// Package sched is the parallel analysis scheduler. It has two
// layers:
//
//   - a generic DAG task runner (this file): tasks with dependency
//     edges fan out across a worker pool, respecting the edges —
//     per-function local passes run in any order, the link step waits
//     for every summary, and the inter-procedural lane passes wait
//     for the link;
//
//   - an incremental checker pipeline (pipeline.go) that builds that
//     DAG for a loaded program, consulting a depot.Depot so work
//     whose inputs have not changed is loaded instead of re-run, and
//     using call-graph edges for precise invalidation.
//
// cmd/mcheck (-j/-cache) and cmd/mcheckd both execute through this
// package, so the CLI and the daemon share one execution path.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"flashmc/internal/obs"
)

// Task is one schedulable unit of analysis.
type Task struct {
	// ID names the task; it must be unique within a Run.
	ID string
	// Deps lists task IDs that must complete (successfully) first.
	Deps []string
	// Run does the work. An error fails the task and skips its
	// transitive dependents.
	Run func() error

	// enqueuedAt stamps when the task became ready, for queue-wait
	// accounting.
	enqueuedAt time.Time
	// args are trace-span annotations attached by the task body (via
	// Annotate) and emitted on the task's span when Run returns — the
	// pipeline stamps each task's cache decision this way.
	args map[string]any
}

// Annotate attaches a key/value to the task's trace span. It is only
// safe to call from within the task's own Run (the runner reads the
// annotations after Run returns, on the same goroutine).
func (t *Task) Annotate(key string, v any) {
	if t.args == nil {
		t.args = map[string]any{}
	}
	t.args[key] = v
}

// RunStats describes one scheduler run.
type RunStats struct {
	// Tasks is how many tasks executed (skipped dependents excluded).
	Tasks int
	// MaxQueueDepth is the peak number of ready-but-unclaimed tasks.
	MaxQueueDepth int
	// TaskTime is the summed wall time of all task bodies; with W
	// workers the elapsed time approaches TaskTime/W.
	TaskTime time.Duration
	// QueueWait is the summed time tasks spent ready but unclaimed.
	QueueWait time.Duration
	// Durations holds each executed task body's wall time, in no
	// particular order; the run ledger derives timing quantiles from
	// it.
	Durations []time.Duration
}

var (
	mTasks     = obs.NewCounter("sched_tasks_total", "tasks executed by the DAG scheduler")
	mTaskSecs  = obs.NewHistogram("sched_task_seconds", "wall time of task bodies", nil)
	mQueueWait = obs.NewHistogram("sched_queue_wait_seconds", "time tasks spent ready but unclaimed", nil)
)

// Run executes tasks over workers goroutines, honoring dependency
// edges. It returns the joined errors of all failed tasks; dependents
// of a failed task are skipped and reported as skipped. A dependency
// cycle or an edge to an unknown task fails before anything runs.
func Run(workers int, tasks []*Task) (RunStats, error) {
	return RunTraced(workers, nil, tasks)
}

// RunTraced is Run with a span per executed task recorded on tracer
// (which may be nil), one trace lane per worker.
func RunTraced(workers int, tracer *obs.Tracer, tasks []*Task) (RunStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var stats RunStats
	if len(tasks) == 0 {
		return stats, nil
	}

	byID := make(map[string]*Task, len(tasks))
	for _, t := range tasks {
		if _, dup := byID[t.ID]; dup {
			return stats, fmt.Errorf("sched: duplicate task %q", t.ID)
		}
		byID[t.ID] = t
	}
	indeg := make(map[string]int, len(tasks))
	dependents := make(map[string][]*Task, len(tasks))
	for _, t := range tasks {
		for _, d := range t.Deps {
			if _, ok := byID[d]; !ok {
				return stats, fmt.Errorf("sched: task %q depends on unknown task %q", t.ID, d)
			}
			indeg[t.ID]++
			dependents[d] = append(dependents[d], t)
		}
	}
	// Kahn pre-pass: if the DAG has a cycle, refuse to start rather
	// than deadlock mid-run.
	{
		deg := make(map[string]int, len(indeg))
		for k, v := range indeg {
			deg[k] = v
		}
		var ready []*Task
		for _, t := range tasks {
			if deg[t.ID] == 0 {
				ready = append(ready, t)
			}
		}
		seen := 0
		for len(ready) > 0 {
			t := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			seen++
			for _, d := range dependents[t.ID] {
				if deg[d.ID]--; deg[d.ID] == 0 {
					ready = append(ready, d)
				}
			}
		}
		if seen != len(tasks) {
			return stats, errors.New("sched: dependency cycle")
		}
	}

	var (
		mu        sync.Mutex
		errs      []error
		failed    = map[string]bool{} // failed or skipped tasks
		remaining = len(tasks)
		queued    int
		ready     = make(chan *Task, len(tasks))
	)
	enqueue := func(t *Task) { // mu held
		queued++
		if queued > stats.MaxQueueDepth {
			stats.MaxQueueDepth = queued
		}
		t.enqueuedAt = time.Now()
		ready <- t
	}
	// finish marks t done (or failed), releasing or skipping its
	// dependents; the last task closes the ready channel.
	var finish func(t *Task, err error)
	finish = func(t *Task, err error) { // mu held
		if err != nil {
			failed[t.ID] = true
			errs = append(errs, err)
		}
		remaining--
		for _, d := range dependents[t.ID] {
			if indeg[d.ID]--; indeg[d.ID] == 0 {
				if failed[t.ID] {
					finish(d, fmt.Errorf("sched: %s skipped: dependency %s failed", d.ID, t.ID))
					continue
				}
				blocked := false
				for _, dep := range d.Deps {
					if failed[dep] {
						blocked = true
						break
					}
				}
				if blocked {
					finish(d, fmt.Errorf("sched: %s skipped: failed dependency", d.ID))
				} else {
					enqueue(d)
				}
			}
		}
		if remaining == 0 {
			close(ready)
		}
	}

	mu.Lock()
	for _, t := range tasks {
		if indeg[t.ID] == 0 {
			enqueue(t)
		}
	}
	mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for t := range ready {
				wait := time.Since(t.enqueuedAt)
				mu.Lock()
				queued--
				mu.Unlock()
				mQueueWait.ObserveDuration(wait)
				sp := tracer.StartSpan(t.ID, lane)
				start := time.Now()
				err := t.Run()
				dur := time.Since(start)
				for k, v := range t.args {
					sp.Arg(k, v)
				}
				sp.End()
				mTasks.Inc()
				mTaskSecs.ObserveDuration(dur)
				mu.Lock()
				stats.Tasks++
				stats.TaskTime += dur
				stats.QueueWait += wait
				stats.Durations = append(stats.Durations, dur)
				finish(t, err)
				mu.Unlock()
			}
		}(w + 1)
	}
	wg.Wait()
	return stats, errors.Join(errs...)
}
