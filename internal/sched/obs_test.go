package sched

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"flashmc/internal/depot"
	"flashmc/internal/obs"
)

// TestGCDuringWarmCheck sweeps the depot while warm checks stream
// artifacts out of it. A sweep racing a read turns hits into misses —
// which recompute — so every run must still produce the cold run's
// exact reports, and nothing may panic.
func TestGCDuringWarmCheck(t *testing.T) {
	d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Depot: d}

	p, prog := loadProto(t, nil)
	cold, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.GC(0, 0); err != nil {
				t.Errorf("GC: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 5; i++ {
		pi, progi := loadProto(t, nil)
		got, err := a.Check(Request{Prog: progi, Spec: pi.Spec, Jobs: FlashJobs(pi.Spec)})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !reflect.DeepEqual(cold.Reports, got.Reports) {
			t.Fatalf("run %d: reports diverged under concurrent GC", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCheckRecordsTaskSpans pins the tracer wiring: a traced Check
// emits one span per executed task plus the enclosing check span, and
// the trace validates as Chrome trace_event JSON.
func TestCheckRecordsTaskSpans(t *testing.T) {
	tr := obs.NewTracer()
	a := &Analyzer{Tracer: tr}
	p, prog := loadProto(t, nil)
	res, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec)})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	// Every scheduled task plus the "check" span.
	if len(events) != res.Stats.Tasks+1 {
		t.Fatalf("events = %d, want %d tasks + 1", len(events), res.Stats.Tasks)
	}
	var sawCheck, sawTask bool
	for _, e := range events {
		if e.Name == "check" {
			sawCheck = true
		}
		if e.Name == "link" {
			sawTask = true
		}
	}
	if !sawCheck || !sawTask {
		t.Fatalf("missing check/link spans in %d events", len(events))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(&buf); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if res.Stats.QueueWait < 0 {
		t.Fatalf("QueueWait = %v", res.Stats.QueueWait)
	}
}
