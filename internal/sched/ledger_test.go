package sched

import (
	"testing"

	"flashmc/internal/cc/token"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
)

// TestRunLedger: entries append in order, round-trip by id, and
// DiffRuns attributes appeared/disappeared reports and perf deltas.
func TestRunLedger(t *testing.T) {
	d, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep := func(msg string) engine.Report {
		return engine.Report{SM: "lock", Rule: "double-lock", Fn: "f", Msg: msg,
			Trace: engine.Witness(token.Pos{}, "lock", msg)}
	}
	a := &RunEntry{RequestFP: "req", ProgramFP: "prog", ReportHash: "h1",
		Reports: []engine.Report{rep("one"), rep("two")},
		Hits:    3, Misses: 1, ElapsedUS: 100,
		Decisions: map[string]int{DecisionHit: 3, DecisionNew: 1}}
	if err := AppendRun(d, a); err != nil {
		t.Fatal(err)
	}
	b := &RunEntry{RequestFP: "req", ProgramFP: "prog", ReportHash: "h2",
		Reports: []engine.Report{rep("two"), rep("three")},
		Hits:    4, Misses: 0, ElapsedUS: 60,
		Decisions: map[string]int{DecisionHit: 4}}
	if err := AppendRun(d, b); err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || b.ID == "" || a.ID == b.ID {
		t.Fatalf("ids not assigned uniquely: %q %q", a.ID, b.ID)
	}

	ids := ListRuns(d)
	if len(ids) != 2 || ids[0] != a.ID || ids[1] != b.ID {
		t.Fatalf("index wrong: %v", ids)
	}
	got, ok := GetRun(d, a.ID)
	if !ok || got.ReportHash != "h1" || len(got.Reports) != 2 {
		t.Fatalf("entry round-trip wrong: %+v", got)
	}
	if line := got.DecisionLine(); line != "hit=3 new=1 vb=0 oc=0 dep=0 ev=0" {
		t.Fatalf("decision line wrong: %q", line)
	}

	diff := DiffRuns(a, b)
	if diff.Identical || !diff.SameRequest {
		t.Fatalf("diff flags wrong: %+v", diff)
	}
	if len(diff.Appeared) != 1 || diff.Appeared[0].Msg != "three" {
		t.Fatalf("appeared wrong: %+v", diff.Appeared)
	}
	if len(diff.Disappeared) != 1 || diff.Disappeared[0].Msg != "one" {
		t.Fatalf("disappeared wrong: %+v", diff.Disappeared)
	}
	if diff.ElapsedDeltaUS != -40 || diff.HitDelta != 1 || diff.MissDelta != -1 {
		t.Fatalf("perf deltas wrong: %+v", diff)
	}
	if len(diff.Appeared[0].Trace) == 0 {
		t.Fatal("diff lost the witness trace")
	}

	// Identical runs diff empty.
	self := DiffRuns(b, b)
	if !self.Identical || len(self.Appeared)+len(self.Disappeared) != 0 {
		t.Fatalf("self-diff not empty: %+v", self)
	}
}
