package sched

import (
	"sync"
	"testing"

	"flashmc/internal/cc/token"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
)

// TestRunLedger: entries append in order, round-trip by id, and
// DiffRuns attributes appeared/disappeared reports and perf deltas.
func TestRunLedger(t *testing.T) {
	d, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep := func(msg string) engine.Report {
		return engine.Report{SM: "lock", Rule: "double-lock", Fn: "f", Msg: msg,
			Trace: engine.Witness(token.Pos{}, "lock", msg)}
	}
	a := &RunEntry{RequestFP: "req", ProgramFP: "prog", ReportHash: "h1",
		Reports: []engine.Report{rep("one"), rep("two")},
		Hits:    3, Misses: 1, ElapsedUS: 100,
		Decisions: map[string]int{DecisionHit: 3, DecisionNew: 1}}
	if err := AppendRun(d, a); err != nil {
		t.Fatal(err)
	}
	b := &RunEntry{RequestFP: "req", ProgramFP: "prog", ReportHash: "h2",
		Reports: []engine.Report{rep("two"), rep("three")},
		Hits:    4, Misses: 0, ElapsedUS: 60,
		Decisions: map[string]int{DecisionHit: 4}}
	if err := AppendRun(d, b); err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || b.ID == "" || a.ID == b.ID {
		t.Fatalf("ids not assigned uniquely: %q %q", a.ID, b.ID)
	}

	ids := ListRuns(d)
	if len(ids) != 2 || ids[0] != a.ID || ids[1] != b.ID {
		t.Fatalf("index wrong: %v", ids)
	}
	got, ok := GetRun(d, a.ID)
	if !ok || got.ReportHash != "h1" || len(got.Reports) != 2 {
		t.Fatalf("entry round-trip wrong: %+v", got)
	}
	if line := got.DecisionLine(); line != "hit=3 new=1 vb=0 oc=0 dep=0 ev=0 rem=0" {
		t.Fatalf("decision line wrong: %q", line)
	}

	diff := DiffRuns(a, b)
	if diff.Identical || !diff.SameRequest {
		t.Fatalf("diff flags wrong: %+v", diff)
	}
	if len(diff.Appeared) != 1 || diff.Appeared[0].Msg != "three" {
		t.Fatalf("appeared wrong: %+v", diff.Appeared)
	}
	if len(diff.Disappeared) != 1 || diff.Disappeared[0].Msg != "one" {
		t.Fatalf("disappeared wrong: %+v", diff.Disappeared)
	}
	if diff.ElapsedDeltaUS != -40 || diff.HitDelta != 1 || diff.MissDelta != -1 {
		t.Fatalf("perf deltas wrong: %+v", diff)
	}
	if len(diff.Appeared[0].Trace) == 0 {
		t.Fatal("diff lost the witness trace")
	}

	// Identical runs diff empty.
	self := DiffRuns(b, b)
	if !self.Identical || len(self.Appeared)+len(self.Disappeared) != 0 {
		t.Fatalf("self-diff not empty: %+v", self)
	}
}

// TestListRunsSurvivesLostIndexSlot replays the cross-process append
// race the package comment describes: ledgerMu only serializes one
// process, so two appenders in different processes each read the same
// index snapshot and the second write overwrites the first's slot.
// The entry artifact itself survives; before the fix, ListRuns read
// only the index and the orphaned run vanished from every listing and
// diff. The race is staged deterministically — both appenders read the
// (empty) index before either writes it back — so the index provably
// holds one id while two entries exist.
func TestListRunsSurvivesLostIndexSlot(t *testing.T) {
	d, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := []*RunEntry{
		{ID: "20260101T000001Z-aaaaaaaaaaaa", ReportHash: "h1", RequestFP: "req"},
		{ID: "20260101T000002Z-bbbbbbbbbbbb", ReportHash: "h2", RequestFP: "req"},
	}
	var ready, done sync.WaitGroup
	ready.Add(len(entries))
	done.Add(len(entries))
	gate := make(chan struct{})
	for _, e := range entries {
		e := e
		go func() {
			defer done.Done()
			// The appender's body, minus ledgerMu: store the entry, read
			// the index, then (after the barrier) write it back extended.
			if err := d.PutJSON(runKey(e.ID), e); err != nil {
				t.Error(err)
			}
			var ids []string
			d.GetJSON(runKey(runIndexSource), &ids)
			ready.Done()
			<-gate
			if err := d.PutJSON(runKey(runIndexSource), append(ids, e.ID)); err != nil {
				t.Error(err)
			}
		}()
	}
	ready.Wait()
	close(gate)
	done.Wait()

	var raw []string
	d.GetJSON(runKey(runIndexSource), &raw)
	if len(raw) != 1 {
		t.Fatalf("race not reproduced: index holds %v", raw)
	}
	got := ListRuns(d)
	if len(got) != 2 || got[0] != entries[0].ID || got[1] != entries[1].ID {
		t.Fatalf("ListRuns lost an entry: %v", got)
	}
	for _, e := range entries {
		if _, ok := GetRun(d, e.ID); !ok {
			t.Fatalf("entry %s unreachable", e.ID)
		}
	}
}
