package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunOrdersDependencies(t *testing.T) {
	var mu sync.Mutex
	var order []string
	rec := func(id string) func() error {
		return func() error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	tasks := []*Task{
		{ID: "link", Deps: []string{"sum:0", "sum:1"}, Run: rec("link")},
		{ID: "sum:0", Run: rec("sum:0")},
		{ID: "sum:1", Run: rec("sum:1")},
		{ID: "lanes:h", Deps: []string{"link"}, Run: rec("lanes:h")},
	}
	stats, err := Run(4, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 4 {
		t.Fatalf("ran %d tasks", stats.Tasks)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["link"] < pos["sum:0"] || pos["link"] < pos["sum:1"] || pos["lanes:h"] < pos["link"] {
		t.Fatalf("order violates deps: %v", order)
	}
}

func TestRunParallelism(t *testing.T) {
	// With enough workers, independent tasks overlap: peak in-flight
	// count must exceed 1.
	var inflight, peak atomic.Int32
	barrier := make(chan struct{})
	var tasks []*Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, &Task{ID: string(rune('a' + i)), Run: func() error {
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			if n == 4 {
				close(barrier) // all four running at once
			}
			<-barrier
			inflight.Add(-1)
			return nil
		}})
	}
	if _, err := Run(4, tasks); err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 4 {
		t.Fatalf("peak parallelism %d, want 4", peak.Load())
	}
}

func TestRunFailureSkipsDependents(t *testing.T) {
	ran := map[string]bool{}
	var mu sync.Mutex
	rec := func(id string, err error) func() error {
		return func() error {
			mu.Lock()
			ran[id] = true
			mu.Unlock()
			return err
		}
	}
	boom := errors.New("boom")
	tasks := []*Task{
		{ID: "a", Run: rec("a", boom)},
		{ID: "b", Deps: []string{"a"}, Run: rec("b", nil)},
		{ID: "c", Deps: []string{"b"}, Run: rec("c", nil)},
		{ID: "d", Run: rec("d", nil)},
	}
	_, err := Run(2, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran["b"] || ran["c"] {
		t.Fatal("dependents of failed task ran")
	}
	if !ran["d"] {
		t.Fatal("independent task skipped")
	}
}

func TestRunRejectsCycles(t *testing.T) {
	tasks := []*Task{
		{ID: "a", Deps: []string{"b"}, Run: func() error { return nil }},
		{ID: "b", Deps: []string{"a"}, Run: func() error { return nil }},
	}
	if _, err := Run(2, tasks); err == nil {
		t.Fatal("cycle not detected")
	}
	tasks = []*Task{{ID: "a", Deps: []string{"ghost"}, Run: func() error { return nil }}}
	if _, err := Run(2, tasks); err == nil {
		t.Fatal("unknown dependency not detected")
	}
	tasks = []*Task{
		{ID: "a", Run: func() error { return nil }},
		{ID: "a", Run: func() error { return nil }},
	}
	if _, err := Run(2, tasks); err == nil {
		t.Fatal("duplicate id not detected")
	}
}
