package sched

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"flashmc/internal/core"
	"flashmc/internal/depot"
)

func TestSourceHash(t *testing.T) {
	files := map[string]string{"a.c": "int x;", "b.c": "int y;"}
	roots := []string{"a.c"}
	base := SourceHash(files, roots)
	if base != SourceHash(map[string]string{"b.c": "int y;", "a.c": "int x;"}, []string{"a.c"}) {
		t.Fatal("hash depends on map iteration order")
	}
	variants := []string{
		SourceHash(map[string]string{"a.c": "int x;", "b.c": "int z;"}, roots),
		SourceHash(map[string]string{"a.c": "int x;", "c.c": "int y;"}, roots),
		SourceHash(files, []string{"b.c"}),
		SourceHash(files, []string{"a.c", "b.c"}),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base", i)
		}
	}
	// Name/content boundaries must not be ambiguous.
	if SourceHash(map[string]string{"ab": "c"}, nil) == SourceHash(map[string]string{"a": "bc"}, nil) {
		t.Fatal("file name/content concatenation is ambiguous")
	}
}

// TestProgramCacheHitSkipsParse: a resident program is served without
// re-running the frontend, and its fingerprints match a direct
// computation (warm Check must address the same depot keys as cold).
func TestProgramCacheHitSkipsParse(t *testing.T) {
	_, prog := loadProto(t, nil)
	var parses atomic.Int32
	parse := func() (*core.Program, error) {
		parses.Add(1)
		return prog, nil
	}
	c := &ProgramCache{}
	cp, hit, err := c.Load("h1", parse)
	if err != nil || hit {
		t.Fatalf("first load: hit=%v err=%v", hit, err)
	}
	cp2, hit, err := c.Load("h1", parse)
	if err != nil || !hit {
		t.Fatalf("second load: hit=%v err=%v", hit, err)
	}
	if parses.Load() != 1 {
		t.Fatalf("frontend ran %d times, want 1", parses.Load())
	}
	if cp2.Prog != cp.Prog {
		t.Fatal("hit returned a different program instance")
	}
	wantFPs := Fingerprints(prog)
	if len(cp.Fingerprints) != len(wantFPs) {
		t.Fatalf("cached %d fingerprints, want %d", len(cp.Fingerprints), len(wantFPs))
	}
	for i := range wantFPs {
		if cp.Fingerprints[i] != wantFPs[i] {
			t.Fatalf("fingerprint %d differs from direct computation", i)
		}
	}
	if cp.ProgramFP != ProgramFingerprint(prog, wantFPs) {
		t.Fatal("cached program fingerprint differs from direct computation")
	}
}

// TestProgramCacheSingleFlight: concurrent misses on one hash share a
// single parse.
func TestProgramCacheSingleFlight(t *testing.T) {
	_, prog := loadProto(t, nil)
	var parses atomic.Int32
	gate := make(chan struct{})
	parse := func() (*core.Program, error) {
		parses.Add(1)
		<-gate
		return prog, nil
	}
	c := &ProgramCache{}
	var wg sync.WaitGroup
	cps := make([]*CachedProgram, 8)
	for i := range cps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cp, _, err := c.Load("h", parse)
			if err != nil {
				t.Errorf("load %d: %v", i, err)
			}
			cps[i] = cp
		}(i)
	}
	// Let followers queue behind the leader, then release the parse.
	for parses.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if parses.Load() != 1 {
		t.Fatalf("frontend ran %d times under concurrent misses, want 1", parses.Load())
	}
	for i, cp := range cps {
		if cp == nil || cp.Prog != cps[0].Prog {
			t.Fatalf("waiter %d got a different program", i)
		}
	}
}

// TestProgramCacheErrorNotCached: parse failures propagate and the
// next Load retries.
func TestProgramCacheErrorNotCached(t *testing.T) {
	_, prog := loadProto(t, nil)
	var parses atomic.Int32
	boom := errors.New("cpp exploded")
	c := &ProgramCache{}
	if _, _, err := c.Load("h", func() (*core.Program, error) {
		parses.Add(1)
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if _, hit, err := c.Load("h", func() (*core.Program, error) {
		parses.Add(1)
		return prog, nil
	}); err != nil || hit {
		t.Fatalf("retry after failure: hit=%v err=%v", hit, err)
	}
	if parses.Load() != 2 {
		t.Fatalf("parse ran %d times, want 2 (failure must not be cached)", parses.Load())
	}
}

// TestProgramCacheLRUCap: beyond Cap resident programs, the least
// recently used one is evicted and must re-parse.
func TestProgramCacheLRUCap(t *testing.T) {
	_, prog := loadProto(t, nil)
	parses := map[string]int{}
	load := func(c *ProgramCache, h string) bool {
		_, hit, err := c.Load(h, func() (*core.Program, error) {
			parses[h]++
			return prog, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	c := &ProgramCache{Cap: 2}
	load(c, "a")
	load(c, "b")
	if !load(c, "a") { // a is now most recently used
		t.Fatal("a evicted below cap")
	}
	load(c, "c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("resident %d programs, cap 2", c.Len())
	}
	if !load(c, "a") {
		t.Fatal("recently used a was evicted")
	}
	if load(c, "b") {
		t.Fatal("b survived past the cap")
	}
	if parses["b"] != 2 {
		t.Fatalf("b parsed %d times, want 2 (evicted then reloaded)", parses["b"])
	}
}

// TestProgramCacheManifestReuse: a fresh process (new cache, same
// depot) must take fingerprints from the programs/v1 manifest instead
// of re-walking the AST — observable because a sentinel manifest's
// values are served verbatim — while a manifest whose function list
// does not match the parse is ignored.
func TestProgramCacheManifestReuse(t *testing.T) {
	_, prog := loadProto(t, nil)
	d, err := depot.Open(filepath.Join(t.TempDir(), "depot"))
	if err != nil {
		t.Fatal(err)
	}
	warm := &ProgramCache{Depot: d}
	cp, _, err := warm.Load("h", func() (*core.Program, error) { return prog, nil })
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite the persisted manifest with sentinel fingerprints.
	names := make([]string, len(prog.Fns))
	sentinel := make([]string, len(prog.Fns))
	for i, fn := range prog.Fns {
		names[i] = fn.Name
		sentinel[i] = fmt.Sprintf("sentinel-%d", i)
	}
	key := depot.Key{Kind: programsKind, Source: "h", Version: FrontendVersion}
	if err := d.PutJSON(key, programManifest{Functions: names, Fingerprints: sentinel, ProgramFP: "sentinel-prog"}); err != nil {
		t.Fatal(err)
	}
	cold := &ProgramCache{Depot: d}
	got, hit, err := cold.Load("h", func() (*core.Program, error) { return prog, nil })
	if err != nil || hit {
		t.Fatalf("cold load: hit=%v err=%v", hit, err)
	}
	if got.ProgramFP != "sentinel-prog" || got.Fingerprints[0] != "sentinel-0" {
		t.Fatal("fingerprints recomputed instead of read from the programs/v1 manifest")
	}

	// A manifest that disagrees with the parse (wrong function list)
	// must be ignored and overwritten with a correct one.
	if err := d.PutJSON(key, programManifest{Functions: []string{"bogus"}, Fingerprints: []string{"f"}, ProgramFP: "p"}); err != nil {
		t.Fatal(err)
	}
	fresh := &ProgramCache{Depot: d}
	got, _, err = fresh.Load("h", func() (*core.Program, error) { return prog, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.ProgramFP != cp.ProgramFP {
		t.Fatal("mismatched manifest was trusted")
	}
	var m programManifest
	if !d.GetJSON(key, &m) || m.ProgramFP != cp.ProgramFP {
		t.Fatal("corrected manifest not persisted")
	}
}

// TestCheckWithCachedFingerprints: Check fed a ProgramCache's
// fingerprints must address the same depot artifacts and render the
// same reports as a Check that computes them itself — the invariant
// that makes the warm mcheckd path byte-identical to cold.
func TestCheckWithCachedFingerprints(t *testing.T) {
	proto, prog := loadProto(t, nil)
	spec := proto.Spec
	d, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	an := &Analyzer{Depot: d}

	cold, err := an.Check(Request{Prog: prog, Spec: spec, Jobs: FlashJobs(spec)})
	if err != nil {
		t.Fatal(err)
	}

	c := &ProgramCache{}
	cp, _, err := c.Load("h", func() (*core.Program, error) { return prog, nil })
	if err != nil {
		t.Fatal(err)
	}
	warm, err := an.Check(Request{Prog: cp.Prog, Spec: spec, Jobs: FlashJobs(spec),
		Fingerprints: cp.Fingerprints, ProgramFP: cp.ProgramFP})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(cold.Reports), render(warm.Reports)) {
		t.Fatal("cached fingerprints changed the report stream")
	}
	if warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed %d artifacts: fingerprints from the cache address different keys", warm.Stats.CacheMisses)
	}
}
