package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
	"sync"

	"flashmc/internal/core"
	"flashmc/internal/depot"
)

// programsKind versions the depot's parse-manifest artifact: the
// function list, per-function fingerprints, and program fingerprint of
// one loaded source set, keyed by SourceHash. It lets a warm process
// skip the fingerprint walk after a parse, and is the persisted half
// of the cross-request program cache.
const programsKind = "programs/v1"

// FrontendVersion salts program-cache keys with the frontend's
// identity. Bump it when the preprocessor, parser, type checker, CFG
// builder, or fingerprint function changes observable output — a
// stale manifest or cached program must miss, not serve old shapes.
const FrontendVersion = "frontend/v1"

// SourceHash content-addresses one frontend invocation: the file set
// (names and contents), the root ordering, and the frontend version.
// Two requests with the same hash parse to identical programs, which
// is what makes the cached *core.Program safely shareable.
func SourceHash(files map[string]string, roots []string) string {
	h := sha256.New()
	io.WriteString(h, FrontendVersion)
	h.Write([]byte{0})
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		io.WriteString(h, name)
		h.Write([]byte{0})
		io.WriteString(h, files[name])
		h.Write([]byte{0})
	}
	io.WriteString(h, "roots")
	h.Write([]byte{0})
	for _, r := range roots {
		io.WriteString(h, r)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CachedProgram is a parsed program plus its precomputed fingerprints,
// ready to feed Analyzer.Check without re-running the frontend.
type CachedProgram struct {
	Prog *core.Program
	// Fingerprints is parallel to Prog.Fns; ProgramFP is the
	// whole-program fingerprint over it.
	Fingerprints []string
	ProgramFP    string
}

// programManifest is the programs/v1 depot payload.
type programManifest struct {
	Functions    []string `json:"functions"`
	Fingerprints []string `json:"fingerprints"`
	ProgramFP    string   `json:"program_fingerprint"`
}

// matches reports whether the manifest describes exactly prog's
// function list (same definitions, same order).
func (m programManifest) matches(p *core.Program) bool {
	if len(m.Functions) != len(p.Fns) || len(m.Fingerprints) != len(p.Fns) || m.ProgramFP == "" {
		return false
	}
	for i, fn := range p.Fns {
		if m.Functions[i] != fn.Name {
			return false
		}
	}
	return true
}

// ProgramCache shares parsed programs across requests, keyed by
// SourceHash. A hit serves the live *core.Program — loaded programs
// are immutable after Load, so concurrent checks can share one — and
// skips the frontend (cpp, lex, parse, typecheck, CFG) entirely.
// Concurrent misses for the same hash are single-flighted: one parse,
// every waiter shares it. Parse manifests persist in the Depot under
// programs/v1, so even a cold process skips the fingerprint walk when
// the depot has seen the source before.
type ProgramCache struct {
	// Depot persists programs/v1 manifests; nil skips persistence.
	Depot *depot.Depot
	// Cap bounds how many parsed programs stay resident (LRU evicted
	// beyond it); <= 0 means 8.
	Cap int

	mu      sync.Mutex
	seq     uint64
	entries map[string]*pcEntry
	flights map[string]*pcFlight
}

type pcEntry struct {
	cp  *CachedProgram
	seq uint64
}

type pcFlight struct {
	done chan struct{}
	cp   *CachedProgram
	err  error
}

func (c *ProgramCache) cap() int {
	if c.Cap <= 0 {
		return 8
	}
	return c.Cap
}

// Len returns the number of resident programs.
func (c *ProgramCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Load returns the program for srcHash, parsing with parse() only on
// a miss. hit reports whether the frontend was skipped — true both
// for resident programs and for followers that shared a leader's
// in-flight parse. Parse failures are returned, never cached.
func (c *ProgramCache) Load(srcHash string, parse func() (*core.Program, error)) (cp *CachedProgram, hit bool, err error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[string]*pcEntry{}
		c.flights = map[string]*pcFlight{}
	}
	if e, ok := c.entries[srcHash]; ok {
		c.seq++
		e.seq = c.seq
		c.mu.Unlock()
		return e.cp, true, nil
	}
	if fl, ok := c.flights[srcHash]; ok {
		c.mu.Unlock()
		<-fl.done
		return fl.cp, fl.err == nil, fl.err
	}
	fl := &pcFlight{done: make(chan struct{})}
	c.flights[srcHash] = fl
	c.mu.Unlock()

	fl.cp, fl.err = c.build(srcHash, parse)

	c.mu.Lock()
	delete(c.flights, srcHash)
	if fl.err == nil {
		c.seq++
		c.entries[srcHash] = &pcEntry{cp: fl.cp, seq: c.seq}
		for len(c.entries) > c.cap() {
			lruHash, lruSeq := "", uint64(0)
			for h, e := range c.entries {
				if lruHash == "" || e.seq < lruSeq {
					lruHash, lruSeq = h, e.seq
				}
			}
			delete(c.entries, lruHash)
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.cp, false, fl.err
}

// build runs the frontend and attaches fingerprints, reusing the
// depot's programs/v1 manifest when it describes this exact parse.
func (c *ProgramCache) build(srcHash string, parse func() (*core.Program, error)) (*CachedProgram, error) {
	p, err := parse()
	if err != nil {
		return nil, err
	}
	cp := &CachedProgram{Prog: p}
	key := depot.Key{Kind: programsKind, Source: srcHash, Version: FrontendVersion}
	var m programManifest
	if c.Depot != nil && c.Depot.GetJSON(key, &m) && m.matches(p) {
		cp.Fingerprints = m.Fingerprints
		cp.ProgramFP = m.ProgramFP
		return cp, nil
	}
	cp.Fingerprints = Fingerprints(p)
	cp.ProgramFP = ProgramFingerprint(p, cp.Fingerprints)
	if c.Depot != nil {
		names := make([]string, len(p.Fns))
		for i, fn := range p.Fns {
			names[i] = fn.Name
		}
		c.Depot.PutJSON(key, programManifest{
			Functions: names, Fingerprints: cp.Fingerprints, ProgramFP: cp.ProgramFP,
		})
	}
	return cp, nil
}
