package sched

// This file is the scheduler's half of the distributed fleet: the
// Remote hook the pipeline dispatches cache-missed tasks through, the
// source Bundle a dispatcher publishes so stateless workers can parse
// the same program, and the Executor that cmd/mcheckworker runs
// fleet.Descriptors with. The executor is deliberately paranoid —
// every descriptor carries redundant identity (function name, checker
// version, spec hash, output fingerprint), and the executor
// recomputes each from its own parse before writing anything under
// the dispatcher's output address. A mismatch means version skew or a
// divergent depot, and is rejected terminally (fleet.ErrReject) so
// the dispatcher falls straight back to local execution instead of
// retrying a task every worker would refuse.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/fleet"
	"flashmc/internal/global"
	"flashmc/internal/obs"
)

// Remote executes one serialized task somewhere else and returns the
// artifact bytes. Implemented by *fleet.Dispatcher; any error means
// the caller should run the task locally. A non-nil tracer receives
// the dispatch-side spans and the remote execution spans, merged onto
// the caller's time base.
type Remote interface {
	Do(ctx context.Context, desc *fleet.Descriptor, tr *obs.Tracer) ([]byte, error)
}

// PutBundle publishes a request's source snapshot to the shared depot
// so fleet workers can parse the same program the dispatcher did. It
// must be called before Check dispatches any descriptor for srcHash.
func PutBundle(d *depot.Depot, srcHash string, files map[string]string, roots []string, spec *flash.Spec) error {
	return d.PutJSON(fleet.BundleKey(srcHash, SpecHash(spec)), fleet.Bundle{
		Files: files, Roots: roots, Spec: spec,
	})
}

// Executor runs fleet descriptors on a worker: read the source bundle
// from the shared depot, parse (through the same ProgramCache the
// daemon uses, so repeated tasks for one request parse once),
// cross-check every piece of descriptor identity against the local
// parse, compute the artifact, and store it under the descriptor's
// output key.
type Executor struct {
	Depot    *depot.Depot
	Programs *ProgramCache
	// Producer identifies this worker in provenance records (its
	// listen address); empty falls back to the local pid form.
	Producer string

	mu     sync.Mutex
	linked map[string]*global.Program // srcHash -> linked call graph
	order  []string                   // linked-cache eviction order (FIFO)
}

// NewExecutor returns an executor over the worker's depot.
func NewExecutor(d *depot.Depot) *Executor {
	return &Executor{Depot: d, Programs: &ProgramCache{Depot: d}}
}

// reject wraps a terminal descriptor failure.
func reject(format string, args ...any) error {
	return fmt.Errorf("%w: %s", fleet.ErrReject, fmt.Sprintf(format, args...))
}

// taskSpanName names a descriptor's root execution span by its
// identity, so a merged trace reads like the scheduler's task list.
func taskSpanName(d *fleet.Descriptor) string {
	switch d.Kind {
	case fleet.KindSM:
		return "sm " + d.Checker + " " + d.Fn
	case fleet.KindSummary:
		return "summary " + d.Fn
	case fleet.KindLanes:
		return "lanes " + d.Handler
	case fleet.KindGlobal:
		return "glob " + d.Checker
	}
	return "task " + d.Kind
}

// Execute runs one descriptor. Errors wrapping fleet.ErrReject are
// terminal (version skew, identity mismatch); any other error is
// transient (bundle not yet visible in the depot, IO) and worth
// retrying on another worker. A non-nil tracer records the worker's
// execution spans: bundle fetch, frontend parse (cache misses only),
// the computation itself, and the depot put.
func (e *Executor) Execute(ctx context.Context, desc *fleet.Descriptor, tr *obs.Tracer) ([]byte, error) {
	if err := desc.Validate(); err != nil {
		return nil, reject("%v", err)
	}
	root := tr.StartSpan(taskSpanName(desc), 0).Cat("exec").Arg("out", desc.Output.ID())
	if desc.ParentSpan != "" {
		root.Arg("task", desc.ParentSpan)
	}
	defer root.End()
	bsp := tr.StartSpan("bundle", 0)
	var b fleet.Bundle
	ok := e.Depot.GetJSON(fleet.BundleKey(desc.SrcHash, desc.SpecOpt), &b)
	bsp.End()
	if !ok {
		return nil, fmt.Errorf("sched: bundle %.12s not in depot (is the depot shared?)", desc.SrcHash)
	}
	if got := SpecHash(b.Spec); got != desc.SpecOpt {
		return nil, reject("bundle spec hash %.12s, descriptor wants %.12s", got, desc.SpecOpt)
	}
	cp, _, err := e.Programs.Load(desc.SrcHash, func() (*core.Program, error) {
		fsp := tr.StartSpan("frontend", 0)
		defer fsp.End()
		return core.Load("fleet", cpp.Layered(cpp.MapSource(b.Files), flash.HeaderSource()), b.Roots)
	})
	if err != nil {
		return nil, reject("parse: %v", err)
	}
	p := cp.Prog
	if len(p.ParseErrors) > 0 {
		return nil, reject("bundle has %d parse errors (dispatcher checks clean programs only)", len(p.ParseErrors))
	}

	switch desc.Kind {
	case fleet.KindSummary:
		if err := e.checkFn(cp, desc); err != nil {
			return nil, err
		}
		if err := e.checkLanesIdentity(desc, desc.SpecOpt); err != nil {
			return nil, err
		}
		rsp := tr.StartSpan("run", 0)
		t0 := time.Now()
		sum := global.FromCFG(p.Graphs[desc.FnIndex], checkers.LaneAnnotator)
		rsp.End()
		return e.put(tr, desc, sum, t0, nil)

	case fleet.KindSM:
		if err := e.checkFn(cp, desc); err != nil {
			return nil, err
		}
		sm, opts, err := e.buildSM(p, desc, b.Spec)
		if err != nil {
			return nil, err
		}
		if desc.Output.Options != opts {
			return nil, reject("options %.12s, worker computes %.12s", desc.Output.Options, opts)
		}
		rsp := tr.StartSpan("run", 0)
		t0 := time.Now()
		reports, cov := engine.RunCov(p.Graphs[desc.FnIndex], sm)
		rsp.End()
		return e.put(tr, desc, mkArtifact(reports, cov), t0, nil)

	case fleet.KindGlobal:
		if cp.ProgramFP != desc.Output.Source {
			return nil, reject("program fingerprint %.12s, descriptor wants %.12s", cp.ProgramFP, desc.Output.Source)
		}
		chk := registryChecker(desc.Checker)
		if chk == nil {
			return nil, reject("unknown checker %q", desc.Checker)
		}
		if _, isSM := chk.(checkers.SMProvider); isSM || chk.Name() == "lanes" {
			return nil, reject("checker %q is not a whole-program pass", desc.Checker)
		}
		if chk.Version() != desc.CheckerVersion {
			return nil, reject("checker %s is %s here, descriptor pinned %s", desc.Checker, chk.Version(), desc.CheckerVersion)
		}
		if desc.Output.Options != desc.SpecOpt {
			return nil, reject("whole-program options %.12s, want spec hash %.12s", desc.Output.Options, desc.SpecOpt)
		}
		var (
			reports []engine.Report
			covs    []*engine.Coverage
		)
		rsp := tr.StartSpan("run", 0)
		t0 := time.Now()
		if prov, ok := chk.(checkers.CoverageProvider); ok {
			reports, covs = prov.CheckCov(p, b.Spec)
		} else {
			reports = chk.Check(p, b.Spec)
		}
		rsp.End()
		return e.put(tr, desc, mkArtifact(reports, covs...), t0, nil)

	case fleet.KindLanes:
		if err := e.checkLanesIdentity(desc, desc.SpecOpt); err != nil {
			return nil, err
		}
		linked := e.link(desc.SrcHash, p)
		reach := linked.Reachable([]string{desc.Handler})
		fpByFn := make(map[string]string, len(p.Fns))
		for i, fn := range p.Fns {
			if _, ok := fpByFn[fn.Name]; !ok {
				fpByFn[fn.Name] = cp.Fingerprints[i]
			}
		}
		if got := reachFingerprint(desc.Handler, reach, fpByFn); got != desc.Output.Source {
			return nil, reject("handler %s cone fingerprint %.12s, descriptor wants %.12s", desc.Handler, got, desc.Output.Source)
		}
		one := &flash.Spec{Hardware: []string{desc.Handler}, Allowance: specAllowance(b.Spec)}
		rsp := tr.StartSpan("run", 0)
		t0 := time.Now()
		got, cov := checkers.CheckLanesCov(linked, one)
		rsp.End()
		return e.put(tr, desc, mkArtifact(got, cov), t0,
			summaryDepKeys(reach, fpByFn, desc.CheckerVersion, desc.Output.Options))
	}
	return nil, reject("unknown task kind %q", desc.Kind)
}

// checkFn validates a per-function descriptor against the local
// parse: the index is in range, names the function the dispatcher
// meant, and that function's fingerprint is the artifact's source.
func (e *Executor) checkFn(cp *CachedProgram, desc *fleet.Descriptor) error {
	p := cp.Prog
	if desc.FnIndex < 0 || desc.FnIndex >= len(p.Fns) {
		return reject("fn index %d out of range (%d functions)", desc.FnIndex, len(p.Fns))
	}
	if got := p.Fns[desc.FnIndex].Name; got != desc.Fn {
		return reject("fn %d is %s here, descriptor names %s", desc.FnIndex, got, desc.Fn)
	}
	if got := cp.Fingerprints[desc.FnIndex]; got != desc.Output.Source {
		return reject("fn %s fingerprint %.12s, descriptor wants %.12s", desc.Fn, got, desc.Output.Source)
	}
	return nil
}

// checkLanesIdentity validates a summary/lane descriptor's checker
// identity: the lanes checker, at the version this worker runs, under
// the bundle's spec options.
func (e *Executor) checkLanesIdentity(desc *fleet.Descriptor, specOpt string) error {
	if desc.Checker != "lanes" || desc.Output.Checker != "lanes" {
		return reject("%s task for checker %q, want lanes", desc.Kind, desc.Checker)
	}
	chk := registryChecker("lanes")
	if chk.Version() != desc.CheckerVersion {
		return reject("lanes is %s here, descriptor pinned %s", chk.Version(), desc.CheckerVersion)
	}
	if desc.Output.Options != specOpt {
		return reject("lanes options %.12s, want spec hash %.12s", desc.Output.Options, specOpt)
	}
	return nil
}

// buildSM resolves the descriptor's state machine — ad-hoc source or
// registry checker — and returns it with the options fingerprint the
// output key must carry.
func (e *Executor) buildSM(p *core.Program, desc *fleet.Descriptor, spec *flash.Spec) (*engine.SM, string, error) {
	if desc.AdhocSrc != "" {
		mp, err := p.CompileChecker(desc.AdhocSrc)
		if err != nil {
			return nil, "", reject("ad-hoc checker: %v", err)
		}
		srcHash := sha256.Sum256([]byte(desc.AdhocSrc))
		version := "adhoc-" + hex.EncodeToString(srcHash[:8])
		if version != desc.CheckerVersion {
			return nil, "", reject("ad-hoc version %s, descriptor pinned %s", version, desc.CheckerVersion)
		}
		if mp.Name != desc.Checker {
			return nil, "", reject("ad-hoc checker compiles to %q, descriptor names %q", mp.Name, desc.Checker)
		}
		return mp.SM, desc.SpecOpt, nil
	}
	chk := registryChecker(desc.Checker)
	if chk == nil {
		return nil, "", reject("unknown checker %q", desc.Checker)
	}
	prov, ok := chk.(checkers.SMProvider)
	if !ok {
		return nil, "", reject("checker %q is not a state machine", desc.Checker)
	}
	if chk.Version() != desc.CheckerVersion {
		return nil, "", reject("checker %s is %s here, descriptor pinned %s", desc.Checker, chk.Version(), desc.CheckerVersion)
	}
	sm, _ := prov.BuildSM(spec)
	return sm, hashStrings(desc.SpecOpt, fmt.Sprintf("correlate=%v", sm.CorrelateBranches)), nil
}

// link returns the whole-protocol call graph for srcHash, building
// and caching it on first use (lane tasks for one request share it).
func (e *Executor) link(srcHash string, p *core.Program) *global.Program {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.linked == nil {
		e.linked = map[string]*global.Program{}
	}
	if lp, ok := e.linked[srcHash]; ok {
		return lp
	}
	summaries := make([]*global.Summary, len(p.Fns))
	for i := range p.Fns {
		summaries[i] = global.FromCFG(p.Graphs[i], checkers.LaneAnnotator)
	}
	lp, _ := global.Link(summaries) // link errors are reported dispatcher-side
	e.linked[srcHash] = lp
	e.order = append(e.order, srcHash)
	for len(e.order) > 4 {
		delete(e.linked, e.order[0])
		e.order = e.order[1:]
	}
	return lp
}

// put stores v under the descriptor's output key and returns the
// exact bytes stored, so the dispatcher's copy and the depot's agree.
// A provenance sidecar naming this worker, the request's trace and
// the compute cost (wall time since t0) is written beside it.
func (e *Executor) put(tr *obs.Tracer, desc *fleet.Descriptor, v any, t0 time.Time, deps []string) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, reject("marshal artifact: %v", err)
	}
	psp := tr.StartSpan("put", 0)
	err = e.Depot.Put(desc.Output, raw)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("sched: store artifact: %w", err)
	}
	producer := e.Producer
	if producer == "" {
		producer = localProducer
	}
	_ = e.Depot.PutProv(desc.Output, &depot.Provenance{Deps: deps,
		Producer: producer, TraceID: desc.TraceID,
		WallUS: time.Since(t0).Microseconds()})
	return raw, nil
}

// remoteRun is one Check call's dispatch context: the source address,
// spec hash, trace identity, and tracer every descriptor of the
// request shares.
type remoteRun struct {
	r       Remote
	srcHash string
	specOpt string
	traceID string
	tr      *obs.Tracer
}

// desc starts a descriptor for one task of this request; parent names
// the scheduler task it executes, correlating the worker's spans with
// the leader's dispatch spans for the same task id.
func (rr *remoteRun) desc(kind string, out depot.Key, parent string) *fleet.Descriptor {
	return &fleet.Descriptor{
		Format: fleet.DescFormat, Kind: kind,
		SrcHash: rr.srcHash, SpecOpt: rr.specOpt, Output: out,
		TraceID: rr.traceID, ParentSpan: parent,
	}
}

// artifactTask dispatches one report-producing task; nil means the
// fleet could not produce the artifact and the caller runs it locally
// (counted as a fallback).
func (rr *remoteRun) artifactTask(d *fleet.Descriptor) *artifact {
	raw, err := rr.r.Do(context.Background(), d, rr.tr)
	if err == nil {
		var art artifact
		if json.Unmarshal(raw, &art) == nil {
			return &art
		}
	}
	fleet.CountFallback(d.ParentSpan, d.TraceID)
	return nil
}

// summaryTask dispatches one per-function summary task; nil means
// run it locally.
func (rr *remoteRun) summaryTask(d *fleet.Descriptor) *global.Summary {
	raw, err := rr.r.Do(context.Background(), d, rr.tr)
	if err == nil {
		var s global.Summary
		if json.Unmarshal(raw, &s) == nil {
			return &s
		}
	}
	fleet.CountFallback(d.ParentSpan, d.TraceID)
	return nil
}

// registryChecker finds a built-in checker by name.
func registryChecker(name string) checkers.Checker {
	for _, chk := range checkers.All() {
		if chk.Name() == name {
			return chk
		}
	}
	return nil
}
