package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"flashmc/internal/cc/token"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/cover"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/fleet"
	"flashmc/internal/global"
	"flashmc/internal/obs"
)

// reportsKind versions the depot's report-artifact format. v2 added
// witness traces; v3 stores the run's dynamic coverage alongside the
// reports, so a warm run replays exactly the coverage the cold run
// measured — the property the warm==cold coverage gate tests. Bumping
// the kind (rather than every checker version) retires all stale
// cached payloads at once, including those of ad-hoc checkers.
const reportsKind = "reports/v3"

// artifact is the depot payload for report-producing tasks: the
// reports plus the non-empty coverages the run recorded. Coverage
// timing fields are excluded from JSON (see engine.Coverage), so the
// payload stays byte-deterministic.
type artifact struct {
	Reports  []engine.Report    `json:"reports"`
	Coverage []*engine.Coverage `json:"coverage,omitempty"`
}

// mkArtifact bundles reports with the non-empty subset of covs.
func mkArtifact(reports []engine.Report, covs ...*engine.Coverage) artifact {
	a := artifact{Reports: reports}
	for _, c := range covs {
		if !c.Empty() {
			a.Coverage = append(a.Coverage, c)
		}
	}
	return a
}

// Job is one checker to run over a program. Exactly one of SM, Run,
// or Lanes is set:
//
//   - SM jobs run a state machine per function, cached per function;
//   - Run jobs are whole-program passes, cached per program;
//   - the Lanes job is the §7 inter-procedural pass, decomposed into
//     per-function summary tasks, a link barrier, and per-handler
//     traversals cached by the handler's call-graph cone.
type Job struct {
	// Name is the checker id in depot keys and reports.
	Name string
	// Version is the checker's semantic version (checkers.Version);
	// a bump misses the cache.
	Version string
	// Options hashes the remaining inputs: protocol spec, engine
	// options, ad-hoc checker source.
	Options string

	SM *engine.SM
	// Run is a whole-program pass. RunCov, when set, is preferred: it
	// also returns the pass's dynamic coverage (FlashJobs wires it for
	// checkers implementing checkers.CoverageProvider).
	Run    func(p *core.Program) []engine.Report
	RunCov func(p *core.Program) ([]engine.Report, []*engine.Coverage)
	Lanes  bool
	// AdhocSrc is the metal source of an ad-hoc SM job. It rides in
	// fleet descriptors so a remote worker can compile the same
	// checker; built-in jobs leave it empty and workers resolve the
	// checker from their registry.
	AdhocSrc string
}

// Request is one analysis of one loaded program.
type Request struct {
	Prog *core.Program
	Spec *flash.Spec
	// Jobs run in order; the order fixes report assembly, so equal
	// requests produce byte-identical report streams whether results
	// come from the cache or from execution.
	Jobs []Job
	// Fingerprints and ProgramFP, when both set and Fingerprints is
	// parallel to Prog.Fns, skip the fingerprint walk (a ProgramCache
	// hit supplies them). They must equal Fingerprints(Prog) and
	// ProgramFingerprint(Prog, fps) — wrong values mis-address the
	// cache. Left empty, Check computes them.
	Fingerprints []string
	ProgramFP    string
	// SrcHash is the request's SourceHash. Required for remote
	// dispatch (descriptors address the source bundle by it, and
	// PutBundle must have published the bundle under it first); left
	// empty, every task runs locally even with a Remote configured.
	SrcHash string
	// Tracer, when non-nil, overrides the analyzer's tracer for this
	// request — mcheckd records one tracer per /check so traces do not
	// interleave across concurrent requests.
	Tracer *obs.Tracer
	// TraceID stamps remote descriptors with the request's trace
	// identity (mcheckd derives it from X-Request-Id); workers echo
	// their execution spans only for traced descriptors.
	TraceID string
	// Fused compiles every SM job into one product automaton and walks
	// each function once for all of them (engine.CompileFused), instead
	// of once per checker. Artifacts are de-fused back to the same
	// per-checker depot keys the sequential mode writes, so warm reads,
	// triage, provenance and the fleet wire format are unchanged, and
	// the report stream stays byte-identical either way.
	Fused bool
}

// Stats describes one Check call.
type Stats struct {
	// Functions is the number of function definitions analyzed.
	Functions int
	// Tasks, MaxQueueDepth and TaskTime come from the scheduler run.
	Tasks         int
	MaxQueueDepth int
	TaskTime      time.Duration
	// Elapsed is the wall time of the whole Check call.
	Elapsed time.Duration
	// QueueWait is the summed time tasks spent ready but unclaimed.
	QueueWait time.Duration
	// CacheHits and CacheMisses count depot lookups for this call.
	CacheHits   int
	CacheMisses int
	// Reanalyzed lists the distinct functions (and, for the lane
	// pass, handlers) whose per-function artifacts missed the cache
	// and were recomputed, sorted. A single-function edit should keep
	// this to the function itself plus its call-graph dependents.
	Reanalyzed []string
	// GlobalReruns counts whole-program passes that missed (they
	// re-run on any program change and are not per-function work).
	GlobalReruns int
	// Decisions breaks the depot lookups down by cache-decision
	// reason (DecisionHit, DecisionNew, ...). The values sum to
	// CacheHits + CacheMisses.
	Decisions map[string]int
	// TaskDurations holds each executed task body's wall time; the
	// run ledger derives timing quantiles from it.
	TaskDurations []time.Duration
}

// ArtifactRef ties a run's reports back to the depot artifact that
// produced them, so a report can be explained offline: GetProv on
// Key names the producer, checker version, inputs and cost.
type ArtifactRef struct {
	// Task is the scheduler task that loaded or computed the
	// artifact.
	Task string
	// Key addresses the artifact (and its provenance sidecar).
	Key depot.Key
	// Decision is the task's cache decision this run.
	Decision string
}

// Result is the outcome of one Check call.
type Result struct {
	Reports []engine.Report
	// RefIdx is parallel to Reports: the index into Artifacts of the
	// artifact each report came from, or -1 for reports synthesized
	// outside any artifact (link errors).
	RefIdx []int
	// Artifacts lists the report-producing artifacts the run touched,
	// in assembly order.
	Artifacts []ArtifactRef
	Stats     Stats
}

// Analyzer executes requests through the scheduler with a depot
// cache. The zero value works: no cache reuse across calls (a fresh
// in-memory depot per call) and GOMAXPROCS workers.
type Analyzer struct {
	// Depot caches artifacts across calls; nil means a private
	// in-memory depot per call.
	Depot *depot.Depot
	// Workers sizes the scheduler pool; <= 0 means GOMAXPROCS.
	Workers int
	// Tracer, when non-nil, records one span per scheduled task plus a
	// span for the whole Check call.
	Tracer *obs.Tracer
	// Coverage, when non-nil, accumulates every job's dynamic coverage
	// keyed by job name. Cache hits replay the coverage stored in the
	// artifact, so the merged counts are identical warm or cold and at
	// any worker count (the set's merge is additive and commutative).
	Coverage *cover.Set
	// Remote, when non-nil, executes cache-missed tasks on the worker
	// fleet (requires Request.SrcHash and a published bundle). Any
	// remote failure falls back to local execution, so results are
	// byte-identical with or without a fleet.
	Remote Remote
}

// runState accumulates one Check call's cache traffic.
type runState struct {
	d          *depot.Depot
	mu         sync.Mutex
	hits       int
	misses     int
	decisions  map[string]int
	reanalyzed map[string]bool
	globals    int
}

// lookup resolves key and classifies the cache decision for the task
// identified by (checker, identity). On a miss the task's marker is
// rewritten to the new key, so the *next* run's miss (if any) can be
// attributed; a warm run writes nothing. The decision is NOT counted
// here: the caller knows only after resolution whether the classified
// reason stands (local recompute) or the work went to a fleet worker
// (DecisionRemote), and calls countDecision with the truth.
func (rs *runState) lookup(checker, identity string, key depot.Key, v any) (bool, string) {
	ok := rs.d.GetJSON(key, v)
	reason := DecisionHit
	if !ok {
		reason = classifyMiss(rs.d, checker, identity, key)
		writeMarker(rs.d, checker, identity, key)
	}
	rs.mu.Lock()
	if ok {
		rs.hits++
	} else {
		rs.misses++
	}
	rs.mu.Unlock()
	return ok, reason
}

// countDecision records a task's final cache decision once its
// resolution is known: DecisionHit, a classified local-recompute
// reason, or DecisionRemote when a fleet worker computed the artifact.
func (rs *runState) countDecision(reason string) {
	decisionCounts.With(reason).Inc()
	rs.mu.Lock()
	rs.decisions[reason]++
	rs.mu.Unlock()
}

func (rs *runState) markFn(name string) {
	rs.mu.Lock()
	rs.reanalyzed[name] = true
	rs.mu.Unlock()
}

func (rs *runState) markGlobal() {
	rs.mu.Lock()
	rs.globals++
	rs.mu.Unlock()
}

// Check analyzes req.Prog with req.Jobs, reusing every artifact in
// the depot whose inputs are unchanged. The report stream is
// byte-identical between warm and cold runs.
func (a *Analyzer) Check(req Request) (*Result, error) {
	start := time.Now()
	tracer := a.Tracer
	if req.Tracer != nil {
		tracer = req.Tracer
	}
	sp := tracer.StartSpan("check", 0)
	defer sp.End()
	d := a.Depot
	if d == nil {
		d, _ = depot.Open("")
	}
	p := req.Prog
	rs := &runState{d: d, reanalyzed: map[string]bool{}, decisions: map[string]int{}}

	fps, progFP := req.Fingerprints, req.ProgramFP
	if len(fps) != len(p.Fns) || progFP == "" {
		fps = Fingerprints(p)
		progFP = ProgramFingerprint(p, fps)
	}
	fpByFn := make(map[string]string, len(p.Fns))
	for i, fn := range p.Fns {
		if _, ok := fpByFn[fn.Name]; !ok { // duplicates keep the first, like global.Link
			fpByFn[fn.Name] = fps[i]
		}
	}

	needLanes := false
	for _, j := range req.Jobs {
		if j.Lanes {
			needLanes = true
		}
	}

	// Remote dispatch context: with a fleet configured and the source
	// bundle published under req.SrcHash, cache-missed tasks are tried
	// on the fleet first. Workers write the same artifact to the same
	// depot key local execution would, and every failure falls back to
	// the local computation, so the report stream is byte-identical
	// with or without workers.
	var rem *remoteRun
	if a.Remote != nil && req.SrcHash != "" {
		rem = &remoteRun{r: a.Remote, srcHash: req.SrcHash, specOpt: SpecHash(req.Spec),
			traceID: req.TraceID, tr: tracer}
	}

	var tasks []*Task

	// Per-function summary tasks (the lane pass's local half). The
	// summary blob is the depot's per-function CFG artifact; it is
	// also reused as the link input.
	summaries := make([]*global.Summary, len(p.Fns))
	var sumIDs []string
	lanesVersion, lanesOptions := "", ""
	if needLanes {
		for _, j := range req.Jobs {
			if j.Lanes {
				lanesVersion, lanesOptions = j.Version, j.Options
				break
			}
		}
		for i := range p.Fns {
			i := i
			id := fmt.Sprintf("sum:%d", i)
			sumIDs = append(sumIDs, id)
			key := depot.Key{Kind: "summary", Source: fps[i], Checker: "lanes",
				Version: lanesVersion, Options: lanesOptions}
			t := &Task{ID: id}
			t.Run = func() error {
				var s global.Summary
				ok, reason := rs.lookup("lanes", "sum:"+p.Fns[i].Name, key, &s)
				if ok {
					t.Annotate("cache", reason)
					rs.countDecision(reason)
					summaries[i] = &s
					return nil
				}
				rs.markFn(p.Fns[i].Name)
				if rem != nil {
					desc := rem.desc(fleet.KindSummary, key, id)
					desc.Checker, desc.CheckerVersion = "lanes", lanesVersion
					desc.FnIndex, desc.Fn = i, p.Fns[i].Name
					if s := rem.summaryTask(desc); s != nil {
						t.Annotate("cache", DecisionRemote)
						rs.countDecision(DecisionRemote)
						summaries[i] = s
						return nil
					}
				}
				t.Annotate("cache", reason)
				rs.countDecision(reason)
				t0 := time.Now()
				summaries[i] = global.FromCFG(p.Graphs[i], checkers.LaneAnnotator)
				if err := d.PutJSON(key, summaries[i]); err != nil {
					return err
				}
				_ = d.PutProv(key, &depot.Provenance{Producer: localProducer,
					TraceID: req.TraceID, WallUS: time.Since(t0).Microseconds()})
				return nil
			}
			tasks = append(tasks, t)
		}
	}

	// The link barrier joins every summary into the whole-protocol
	// call graph; per-handler lane tasks wait on it.
	var (
		linked   *global.Program
		linkErrs []error
	)
	if needLanes {
		tasks = append(tasks, &Task{ID: "link", Deps: sumIDs, Run: func() error {
			linked, linkErrs = global.Link(summaries)
			return nil
		}})
	}

	// Fused mode: compile every SM job into one product automaton and
	// replace the per-(job, function) tasks with one task per function
	// that advances all members through a shared match index
	// (engine.CompileFused). Each member still resolves its own
	// sequential depot key and writes its own artifact — the de-fusing
	// — so cache state, provenance, triage and the fleet wire format
	// are indistinguishable from a sequential run. With fewer than two
	// SM jobs there is nothing to fuse and the flag is a no-op.
	var fusedJobs []int
	var fusedProd *engine.Fused
	if req.Fused {
		for ji, job := range req.Jobs {
			if job.SM != nil {
				fusedJobs = append(fusedJobs, ji)
			}
		}
		if len(fusedJobs) >= 2 {
			sms := make([]*engine.SM, len(fusedJobs))
			for m, ji := range fusedJobs {
				sms[m] = req.Jobs[ji].SM
			}
			fusedProd = engine.CompileFused(sms...)
		} else {
			fusedJobs = nil
		}
	}

	// Per-job result slots, assembled in job order after the run. The
	// ref slots record which artifact each slot's reports came from
	// (each task writes only its own index, so no locking).
	smResults := make([][][]engine.Report, len(req.Jobs))
	globalResults := make([][]engine.Report, len(req.Jobs))
	laneResults := make([]*laneSlot, len(req.Jobs))
	smRefs := make([][]ArtifactRef, len(req.Jobs))
	globalRefs := make([]ArtifactRef, len(req.Jobs))

	for ji, job := range req.Jobs {
		ji, job := ji, job
		switch {
		case job.SM != nil:
			smResults[ji] = make([][]engine.Report, len(p.Fns))
			smRefs[ji] = make([]ArtifactRef, len(p.Fns))
			if fusedProd != nil {
				continue // runs inside the per-function fused tasks below
			}
			for i := range p.Fns {
				i := i
				key := depot.Key{Kind: reportsKind, Source: fps[i], Checker: job.Name,
					Version: job.Version, Options: job.Options}
				id := fmt.Sprintf("sm:%d:%d", ji, i)
				t := &Task{ID: id}
				t.Run = func() error {
					var cached artifact
					ok, reason := rs.lookup(job.Name, "sm:"+p.Fns[i].Name, key, &cached)
					if ok {
						t.Annotate("cache", reason)
						rs.countDecision(reason)
						smRefs[ji][i] = ArtifactRef{Task: id, Key: key, Decision: reason}
						smResults[ji][i] = cached.Reports
						a.recordCoverage(job.Name, cached.Coverage)
						return nil
					}
					rs.markFn(p.Fns[i].Name)
					if rem != nil {
						desc := rem.desc(fleet.KindSM, key, id)
						desc.Checker, desc.CheckerVersion, desc.AdhocSrc = job.Name, job.Version, job.AdhocSrc
						desc.FnIndex, desc.Fn = i, p.Fns[i].Name
						if art := rem.artifactTask(desc); art != nil {
							t.Annotate("cache", DecisionRemote)
							rs.countDecision(DecisionRemote)
							smRefs[ji][i] = ArtifactRef{Task: id, Key: key, Decision: DecisionRemote}
							smResults[ji][i] = art.Reports
							a.recordCoverage(job.Name, art.Coverage)
							return nil
						}
					}
					t.Annotate("cache", reason)
					rs.countDecision(reason)
					smRefs[ji][i] = ArtifactRef{Task: id, Key: key, Decision: reason}
					t0 := time.Now()
					reports, cov := engine.RunCov(p.Graphs[i], job.SM)
					smResults[ji][i] = reports
					art := mkArtifact(reports, cov)
					a.recordCoverage(job.Name, art.Coverage)
					if err := d.PutJSON(key, art); err != nil {
						return err
					}
					_ = d.PutProv(key, &depot.Provenance{Producer: localProducer,
						TraceID: req.TraceID, WallUS: time.Since(t0).Microseconds()})
					return nil
				}
				tasks = append(tasks, t)
			}

		case job.Lanes:
			slot := &laneSlot{reports: map[string][]engine.Report{}}
			if req.Spec != nil {
				slot.handlers = append(append([]string{}, req.Spec.Hardware...), req.Spec.Software...)
			}
			laneResults[ji] = slot
			for _, h := range slot.handlers {
				h := h
				id := fmt.Sprintf("lanes:%d:%s", ji, h)
				t := &Task{ID: id, Deps: []string{"link"}}
				t.Run = func() error {
					reach := linked.Reachable([]string{h})
					key := depot.Key{Kind: reportsKind,
						Source:  reachFingerprint(h, reach, fpByFn),
						Checker: job.Name, Version: job.Version, Options: job.Options}
					var cached artifact
					ok, reason := rs.lookup(job.Name, "lanes:"+h, key, &cached)
					if ok {
						t.Annotate("cache", reason)
						rs.countDecision(reason)
						slot.setRef(h, ArtifactRef{Task: id, Key: key, Decision: reason})
						slot.set(h, cached.Reports)
						a.recordCoverage(job.Name, cached.Coverage)
						return nil
					}
					rs.markFn(h)
					if rem != nil {
						desc := rem.desc(fleet.KindLanes, key, id)
						desc.Checker, desc.CheckerVersion, desc.Handler = job.Name, job.Version, h
						if art := rem.artifactTask(desc); art != nil {
							t.Annotate("cache", DecisionRemote)
							rs.countDecision(DecisionRemote)
							slot.setRef(h, ArtifactRef{Task: id, Key: key, Decision: DecisionRemote})
							slot.set(h, art.Reports)
							a.recordCoverage(job.Name, art.Coverage)
							return nil
						}
					}
					t.Annotate("cache", reason)
					rs.countDecision(reason)
					slot.setRef(h, ArtifactRef{Task: id, Key: key, Decision: reason})
					one := &flash.Spec{Hardware: []string{h}, Allowance: specAllowance(req.Spec)}
					t0 := time.Now()
					got, cov := checkers.CheckLanesCov(linked, one)
					slot.set(h, got)
					art := mkArtifact(got, cov)
					a.recordCoverage(job.Name, art.Coverage)
					if err := d.PutJSON(key, art); err != nil {
						return err
					}
					_ = d.PutProv(key, &depot.Provenance{
						Deps:     summaryDepKeys(reach, fpByFn, job.Version, job.Options),
						Producer: localProducer, TraceID: req.TraceID,
						WallUS: time.Since(t0).Microseconds()})
					return nil
				}
				tasks = append(tasks, t)
			}

		case job.Run != nil || job.RunCov != nil:
			key := depot.Key{Kind: reportsKind, Source: progFP, Checker: job.Name,
				Version: job.Version, Options: job.Options}
			id := fmt.Sprintf("glob:%d", ji)
			t := &Task{ID: id}
			t.Run = func() error {
				var cached artifact
				ok, reason := rs.lookup(job.Name, "glob", key, &cached)
				if ok {
					t.Annotate("cache", reason)
					rs.countDecision(reason)
					globalRefs[ji] = ArtifactRef{Task: id, Key: key, Decision: reason}
					globalResults[ji] = cached.Reports
					a.recordCoverage(job.Name, cached.Coverage)
					return nil
				}
				rs.markGlobal()
				if rem != nil {
					desc := rem.desc(fleet.KindGlobal, key, id)
					desc.Checker, desc.CheckerVersion = job.Name, job.Version
					if art := rem.artifactTask(desc); art != nil {
						t.Annotate("cache", DecisionRemote)
						rs.countDecision(DecisionRemote)
						globalRefs[ji] = ArtifactRef{Task: id, Key: key, Decision: DecisionRemote}
						globalResults[ji] = art.Reports
						a.recordCoverage(job.Name, art.Coverage)
						return nil
					}
				}
				t.Annotate("cache", reason)
				rs.countDecision(reason)
				globalRefs[ji] = ArtifactRef{Task: id, Key: key, Decision: reason}
				t0 := time.Now()
				var covs []*engine.Coverage
				if job.RunCov != nil {
					globalResults[ji], covs = job.RunCov(p)
				} else {
					globalResults[ji] = job.Run(p)
				}
				art := mkArtifact(globalResults[ji], covs...)
				a.recordCoverage(job.Name, art.Coverage)
				if err := d.PutJSON(key, art); err != nil {
					return err
				}
				_ = d.PutProv(key, &depot.Provenance{Producer: localProducer,
					TraceID: req.TraceID, WallUS: time.Since(t0).Microseconds()})
				return nil
			}
			tasks = append(tasks, t)

		default:
			return nil, fmt.Errorf("sched: job %s: no SM, Run, RunCov, or Lanes", job.Name)
		}
	}

	if fusedProd != nil {
		// The folded checker-version vector: one fingerprint over every
		// member's name/version/options, stamped on each fused task so a
		// trace names exactly which product ran. Depot keys stay
		// per-member — the vector never reaches the cache.
		verVec := make([]string, 0, len(fusedJobs)*3)
		for _, ji := range fusedJobs {
			j := req.Jobs[ji]
			verVec = append(verVec, j.Name, j.Version, j.Options)
		}
		fusedFP := hashStrings(verVec...)
		for i := range p.Fns {
			i := i
			id := fmt.Sprintf("fused:%d", i)
			t := &Task{ID: id}
			t.Run = func() error {
				t.Annotate("fused", fusedFP[:12])
				active := make([]bool, len(fusedJobs))
				reasons := make([]string, len(fusedJobs))
				keys := make([]depot.Key, len(fusedJobs))
				hits := 0
				for m, ji := range fusedJobs {
					job := req.Jobs[ji]
					keys[m] = depot.Key{Kind: reportsKind, Source: fps[i], Checker: job.Name,
						Version: job.Version, Options: job.Options}
					var cached artifact
					ok, reason := rs.lookup(job.Name, "sm:"+p.Fns[i].Name, keys[m], &cached)
					reasons[m] = reason
					if ok {
						hits++
						rs.countDecision(reason)
						smRefs[ji][i] = ArtifactRef{Task: id, Key: keys[m], Decision: reason}
						smResults[ji][i] = cached.Reports
						a.recordCoverage(job.Name, cached.Coverage)
						continue
					}
					active[m] = true
				}
				if hits == len(fusedJobs) {
					t.Annotate("cache", DecisionHit)
					return nil
				}
				rs.markFn(p.Fns[i].Name)
				// Missed members are offered to the fleet one by one
				// through the unchanged per-checker descriptors; a member
				// a worker satisfies drops out of the local product walk.
				if rem != nil {
					for m, ji := range fusedJobs {
						if !active[m] {
							continue
						}
						job := req.Jobs[ji]
						desc := rem.desc(fleet.KindSM, keys[m], id)
						desc.Checker, desc.CheckerVersion, desc.AdhocSrc = job.Name, job.Version, job.AdhocSrc
						desc.FnIndex, desc.Fn = i, p.Fns[i].Name
						if art := rem.artifactTask(desc); art != nil {
							rs.countDecision(DecisionRemote)
							smRefs[ji][i] = ArtifactRef{Task: id, Key: keys[m], Decision: DecisionRemote}
							smResults[ji][i] = art.Reports
							a.recordCoverage(job.Name, art.Coverage)
							active[m] = false
						}
					}
				}
				locals := 0
				for _, on := range active {
					if on {
						locals++
					}
				}
				if locals == 0 {
					t.Annotate("cache", DecisionRemote)
					return nil
				}
				t.Annotate("cache", fmt.Sprintf("fused-miss:%d", locals))
				t0 := time.Now()
				reports, covs := fusedProd.RunCov(p.Graphs[i], active)
				wall := time.Since(t0).Microseconds()
				for m, ji := range fusedJobs {
					if !active[m] {
						continue
					}
					job := req.Jobs[ji]
					rs.countDecision(reasons[m])
					smRefs[ji][i] = ArtifactRef{Task: id, Key: keys[m], Decision: reasons[m]}
					smResults[ji][i] = reports[m]
					art := mkArtifact(reports[m], covs[m])
					a.recordCoverage(job.Name, art.Coverage)
					if err := d.PutJSON(keys[m], art); err != nil {
						return err
					}
					// WallUS is the fused walk's wall clock: the joint cost
					// of producing every member artifact in this task.
					_ = d.PutProv(keys[m], &depot.Provenance{Producer: localProducer,
						TraceID: req.TraceID, WallUS: wall})
				}
				return nil
			}
			tasks = append(tasks, t)
		}
	}

	stats, err := RunTraced(a.Workers, tracer, tasks)
	if err != nil {
		return nil, err
	}

	// Assemble in job order, within a job in function/handler order:
	// the same order direct execution produces, so warm and cold runs
	// render identically.
	res := &Result{}
	addFrom := func(ref ArtifactRef, reps []engine.Report) {
		res.Artifacts = append(res.Artifacts, ref)
		for range reps {
			res.RefIdx = append(res.RefIdx, len(res.Artifacts)-1)
		}
		res.Reports = append(res.Reports, reps...)
	}
	for ji, job := range req.Jobs {
		switch {
		case job.SM != nil:
			for i, reps := range smResults[ji] {
				addFrom(smRefs[ji][i], reps)
			}
		case job.Lanes:
			slot := laneResults[ji]
			for _, h := range slot.handlers {
				addFrom(slot.refs[h], slot.reports[h])
			}
			for _, e := range linkErrs {
				res.Reports = append(res.Reports, engine.Report{SM: job.Name, Rule: "link", Msg: e.Error(),
					Trace: engine.Witness(token.Pos{}, "link", e.Error())})
				res.RefIdx = append(res.RefIdx, -1)
			}
			// Link runs live on every call (it is the barrier, never
			// cached), so its coverage is recorded here identically on
			// warm and cold paths.
			a.Coverage.Record(job.Name, checkers.LinkCoverage(len(linkErrs)))
		case job.Run != nil || job.RunCov != nil:
			addFrom(globalRefs[ji], globalResults[ji])
		}
	}

	res.Stats = Stats{
		Functions:     len(p.Fns),
		Tasks:         stats.Tasks,
		MaxQueueDepth: stats.MaxQueueDepth,
		TaskTime:      stats.TaskTime,
		Elapsed:       time.Since(start),
		QueueWait:     stats.QueueWait,
		CacheHits:     rs.hits,
		CacheMisses:   rs.misses,
		GlobalReruns:  rs.globals,
		Decisions:     rs.decisions,
		TaskDurations: stats.Durations,
	}
	for fn := range rs.reanalyzed {
		res.Stats.Reanalyzed = append(res.Stats.Reanalyzed, fn)
	}
	sort.Strings(res.Stats.Reanalyzed)
	return res, nil
}

// recordCoverage replays a slice of coverages into the analyzer's
// coverage set (no-op when coverage collection is off).
func (a *Analyzer) recordCoverage(checker string, covs []*engine.Coverage) {
	if a.Coverage == nil {
		return
	}
	for _, c := range covs {
		a.Coverage.Record(checker, c)
	}
}

// laneSlot collects one lane job's per-handler reports and artifact
// refs; tasks write concurrently.
type laneSlot struct {
	l        sync.Mutex
	handlers []string
	reports  map[string][]engine.Report
	refs     map[string]ArtifactRef
}

func (s *laneSlot) set(h string, r []engine.Report) {
	s.l.Lock()
	s.reports[h] = r
	s.l.Unlock()
}

func (s *laneSlot) setRef(h string, ref ArtifactRef) {
	s.l.Lock()
	if s.refs == nil {
		s.refs = map[string]ArtifactRef{}
	}
	s.refs[h] = ref
	s.l.Unlock()
}

// specAllowance returns the spec's allowance table (nil spec → empty).
func specAllowance(spec *flash.Spec) map[string]flash.LaneVector {
	if spec == nil || spec.Allowance == nil {
		return map[string]flash.LaneVector{}
	}
	return spec.Allowance
}

// FlashJobs builds the job list for the built-in FLASH suite under a
// protocol spec, in checkers.All() order. SM checkers become
// per-function jobs, the lane checker becomes the inter-procedural
// job, and the rest run as whole-program passes; every job's Options
// binds the spec and the engine options its SM runs with.
func FlashJobs(spec *flash.Spec) []Job {
	specOpt := SpecHash(spec)
	var jobs []Job
	for _, chk := range checkers.All() {
		job := Job{Name: chk.Name(), Version: chk.Version(), Options: specOpt}
		if chk.Name() == "lanes" {
			job.Lanes = true
		} else if prov, ok := chk.(checkers.SMProvider); ok {
			sm, _ := prov.BuildSM(spec)
			job.SM = sm
			job.Options = hashStrings(specOpt, fmt.Sprintf("correlate=%v", sm.CorrelateBranches))
		} else {
			chk := chk
			job.Run = func(p *core.Program) []engine.Report { return chk.Check(p, spec) }
			if prov, ok := chk.(checkers.CoverageProvider); ok {
				job.RunCov = func(p *core.Program) ([]engine.Report, []*engine.Coverage) {
					return prov.CheckCov(p, spec)
				}
			}
		}
		jobs = append(jobs, job)
	}
	return jobs
}

// ConventionSpec derives a protocol spec from the h_*/sw_* naming
// convention, for checking code without an explicit specification
// (cmd/mcheck and cmd/mcheckd both run under it).
func ConventionSpec(prog *core.Program) *flash.Spec {
	spec := &flash.Spec{
		Protocol:        "cli",
		Allowance:       map[string]flash.LaneVector{},
		NoStack:         map[string]bool{},
		BufferFreeFns:   map[string]bool{},
		BufferUseFns:    map[string]bool{},
		CondFreeFns:     map[string]bool{},
		DirWritebackFns: map[string]bool{},
	}
	for _, fn := range prog.Fns {
		switch flash.ClassifyName(fn.Name) {
		case flash.HardwareHandler:
			spec.Hardware = append(spec.Hardware, fn.Name)
		case flash.SoftwareHandler:
			spec.Software = append(spec.Software, fn.Name)
		}
	}
	return spec
}

// SpecHash content-addresses a protocol spec (deterministically:
// encoding/json sorts map keys).
func SpecHash(spec *flash.Spec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("sched: marshal spec: %v", err))
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// hashStrings hashes its parts with unambiguous boundaries.
func hashStrings(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
