package sched

import (
	"bytes"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"flashmc/internal/cover"
	"flashmc/internal/depot"
)

// fusedCheck runs the FLASH suite over the test protocol with
// Request.Fused set, returning the result and the run's coverage
// bytes.
func fusedCheck(t *testing.T, d *depot.Depot, workers int, fused bool) (*Result, []byte) {
	t.Helper()
	p, prog := loadProto(t, nil)
	set := cover.NewSet()
	a := &Analyzer{Depot: d, Workers: workers, Coverage: set}
	res, err := a.Check(Request{Prog: prog, Spec: p.Spec, Jobs: FlashJobs(p.Spec), Fused: fused})
	if err != nil {
		t.Fatal(err)
	}
	return res, renderCoverage(t, set)
}

// TestFusedCheckByteIdentical is the fused pipeline's acceptance gate:
// at -j 1 and -j GOMAXPROCS, a fused Check produces the byte-identical
// ranked report stream and per-checker coverage snapshot a sequential
// Check does — rank order, witness traces and counts included.
func TestFusedCheckByteIdentical(t *testing.T) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		seq, seqCov := fusedCheck(t, nil, workers, false)
		fus, fusCov := fusedCheck(t, nil, workers, true)
		if len(seq.Reports) == 0 {
			t.Fatal("sequential run found no reports; comparison is vacuous")
		}
		if !reflect.DeepEqual(seq.Reports, fus.Reports) {
			t.Fatalf("-j %d: fused reports differ structurally from sequential", workers)
		}
		if !bytes.Equal(render(seq.Reports), render(fus.Reports)) {
			t.Fatalf("-j %d: fused rendering differs from sequential", workers)
		}
		if !bytes.Equal(seqCov, fusCov) {
			t.Fatalf("-j %d: fused coverage differs from sequential:\n%s\nvs\n%s", workers, seqCov, fusCov)
		}
	}
}

// TestFusedArtifactsInterchangeable pins the de-fusing: a fused run
// writes the same per-checker artifacts under the same depot keys a
// sequential run does, so either mode warm-starts fully from the
// other's cache and replays identical reports and coverage.
func TestFusedArtifactsInterchangeable(t *testing.T) {
	seqDepot, err := depot.Open(filepath.Join(t.TempDir(), "seq"))
	if err != nil {
		t.Fatal(err)
	}
	fusDepot, err := depot.Open(filepath.Join(t.TempDir(), "fused"))
	if err != nil {
		t.Fatal(err)
	}
	seqCold, seqCov := fusedCheck(t, seqDepot, 0, false)
	fusCold, fusCov := fusedCheck(t, fusDepot, 0, true)
	if fusCold.Stats.CacheMisses == 0 || !bytes.Equal(seqCov, fusCov) {
		t.Fatalf("cold runs disagree: seq %+v fused %+v", seqCold.Stats, fusCold.Stats)
	}

	// Fused over the sequential run's depot: all hits, no recompute.
	warmFus, warmFusCov := fusedCheck(t, seqDepot, 0, true)
	if warmFus.Stats.CacheMisses != 0 {
		t.Fatalf("fused warm run over sequential depot missed %d times (reanalyzed %v)",
			warmFus.Stats.CacheMisses, warmFus.Stats.Reanalyzed)
	}
	// Sequential over the fused run's depot: equally warm.
	warmSeq, warmSeqCov := fusedCheck(t, fusDepot, 0, false)
	if warmSeq.Stats.CacheMisses != 0 {
		t.Fatalf("sequential warm run over fused depot missed %d times (reanalyzed %v)",
			warmSeq.Stats.CacheMisses, warmSeq.Stats.Reanalyzed)
	}
	for name, got := range map[string]*Result{"fused-over-seq": warmFus, "seq-over-fused": warmSeq} {
		if !reflect.DeepEqual(seqCold.Reports, got.Reports) {
			t.Fatalf("%s: warm reports differ from cold sequential", name)
		}
	}
	if !bytes.Equal(seqCov, warmFusCov) || !bytes.Equal(seqCov, warmSeqCov) {
		t.Fatal("warm coverage replay differs across modes")
	}
}

// TestFusedRemoteMatchesLocal: the fused task kind de-fuses misses
// into the existing per-checker fleet descriptors, so a fused Check
// over a worker fleet must produce the sequential local stream too —
// and attribute every worker-computed member under "remote".
func TestFusedRemoteMatchesLocal(t *testing.T) {
	files, roots, prog := loadRemoteProto(t)
	spec := ConventionSpec(prog)

	la := &Analyzer{Workers: 4}
	localRes, err := la.Check(Request{Prog: prog, Spec: spec, Jobs: FlashJobs(spec)})
	if err != nil {
		t.Fatal(err)
	}

	shared, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srcHash := SourceHash(files, roots)
	if err := PutBundle(shared, srcHash, files, roots, spec); err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Depot: shared, Workers: 4, Remote: execRemote{NewExecutor(shared)}}
	res, err := a.Check(Request{Prog: prog, Spec: spec, Jobs: FlashJobs(spec), SrcHash: srcHash, Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(localRes.Reports), render(res.Reports)) {
		t.Fatal("fused fleet reports differ from sequential local reports")
	}
	if res.Stats.CacheMisses == 0 || res.Stats.Decisions[DecisionRemote] != res.Stats.CacheMisses {
		t.Fatalf("fused fleet attribution wrong: %+v", res.Stats)
	}
}
