package flashmc_test

import (
	"fmt"
	"log"

	"flashmc"
)

// ExampleRunMetal shows the paper's Figure 2 checker applied to a
// handler with a buffer race.
func ExampleRunMetal() {
	files := flashmc.FlashHeader()
	files["handler.c"] = `#include "flash-includes.h"
void h_get(void) {
	unsigned a;
	unsigned v;
	v = MISCBUS_READ_DB(a, 0);
	DEC_DB_REF(0);
}
`
	prog, err := flashmc.LoadFiles("demo", files, []string{"handler.c"})
	if err != nil {
		log.Fatal(err)
	}
	reports, err := flashmc.RunMetal(prog, `
{ #include "flash-includes.h" }
sm wait_for_db {
	decl { scalar } addr, buf;
	start:
	{ WAIT_FOR_DB_FULL(addr); } ==> stop
	| { MISCBUS_READ_DB(addr, buf); } ==>
		{ err("Buffer not synchronized"); }
	;
}`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("%s:%d: %s\n", r.Pos.File, r.Pos.Line, r.Msg)
	}
	// Output:
	// handler.c:5: Buffer not synchronized
}

// ExampleCompileMetal inspects a compiled checker.
func ExampleCompileMetal() {
	prog, err := flashmc.CompileMetal(`
sm locks {
	decl { scalar } l;
	track l;
	unlocked:
	{ lock(l); } ==> locked
	;
	locked:
	{ lock(l); } ==> { err("double acquire"); }
	| { unlock(l); } ==> unlocked
	;
}`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sm %s: %d rules, start in %q, tracking %v\n",
		prog.Name, len(prog.SM.Rules), prog.SM.Start, prog.TrackVars)
	// Output:
	// sm locks: 3 rules, start in "unlocked", tracking [l]
}
