// flashaudit runs the paper's complete checker suite over the whole
// synthetic FLASH code base (five protocols plus common code, ~80K
// lines) and prints a Table 7-style summary — the "34 bugs in
// well-tested FLASH protocol code" experience.
package main

import (
	"fmt"
	"log"
	"time"

	"flashmc"
	"flashmc/internal/core"
)

func main() {
	start := time.Now()
	corpus := flashmc.GenerateCorpus(1)

	programs := map[string]*core.Program{}
	totalLOC := 0
	for _, p := range corpus.Protocols {
		prog, err := flashmc.LoadFiles(p.Name, p.Source(), p.RootFiles)
		if err != nil {
			log.Fatalf("%s: %v", p.Name, err)
		}
		programs[p.Name] = prog
		totalLOC += prog.SourceLOC
	}
	fmt.Printf("loaded %d protocols, %d lines of protocol C (%.2fs)\n\n",
		len(corpus.Protocols), totalLOC, time.Since(start).Seconds())

	fmt.Printf("%-24s %6s %9s %9s\n", "checker", "LOC", "reports", "applied")
	grand := 0
	for _, chk := range flashmc.FlashCheckers() {
		reports := 0
		applied := 0
		for _, p := range corpus.Protocols {
			reports += len(chk.Check(programs[p.Name], p.Spec))
			if a := chk.Applied(programs[p.Name]); a > 0 {
				applied += a
			}
		}
		fmt.Printf("%-24s %6d %9d %9d\n", chk.Name(), chk.LOC(), reports, applied)
		grand += reports
	}
	fmt.Printf("\n%d total reports in %.2fs — the paper's Table 7 splits these\n",
		grand, time.Since(start).Seconds())
	fmt.Println("into 34 errors, 6 minor findings, and the false-positive classes;")
	fmt.Println("run `go test ./internal/paper -run TestTable7 -v` for the exact join.")
}
