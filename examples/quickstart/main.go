// Quickstart: write a ten-line metal checker and apply it to a buggy
// FLASH handler. This is the paper's Figure 2 scenario end to end.
package main

import (
	"fmt"
	"log"

	"flashmc"
)

// The checker: "WAIT_FOR_DB_FULL must come before MISCBUS_READ_DB."
const checker = `
{ #include "flash-includes.h" }
sm wait_for_db {
	decl { scalar } addr, buf;
	start:
	{ WAIT_FOR_DB_FULL(addr); } ==> stop
	| { MISCBUS_READ_DB(addr, buf); } ==>
		{ err("Buffer not synchronized"); }
	;
}
`

// The code under check: the else-path reads the data buffer without
// waiting for the hardware to finish filling it — a race that shows up
// only when the message body is still in flight.
const handler = `
#include "flash-includes.h"

void h_local_get(int cached) {
	unsigned hdr;
	unsigned word;
	if (cached) {
		WAIT_FOR_DB_FULL(hdr);
		word = MISCBUS_READ_DB(hdr, 0);
	} else {
		word = MISCBUS_READ_DB(hdr, 0); /* BUG: no wait on this path */
	}
	DEC_DB_REF(0);
}
`

func main() {
	files := flashmc.FlashHeader()
	files["handler.c"] = handler

	prog, err := flashmc.LoadFiles("quickstart", files, []string{"handler.c"})
	if err != nil {
		log.Fatal(err)
	}
	reports, err := flashmc.RunMetal(prog, checker)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("checker found %d violation(s):\n", len(reports))
	for _, r := range reports {
		fmt.Printf("  %s: %s (in %s)\n", r.Pos, r.Msg, r.Fn)
	}
	if len(reports) == 0 {
		fmt.Println("  (none — unexpected: the else-path race should be flagged)")
	}
}
