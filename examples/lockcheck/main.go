// lockcheck demonstrates that the MC framework is not FLASH-specific
// (paper §1, §12: "MC can be applied to this class of code and to
// software in general"): a fifteen-line metal checker enforces the
// kernel locking discipline "no double acquire, no release without
// acquire, no return with the lock held" over synthetic OS code.
package main

import (
	"fmt"
	"log"

	"flashmc"
)

const kernelHeader = `
#ifndef KERNEL_H
#define KERNEL_H
struct spinlock { unsigned held; };
extern struct spinlock giant;
void lock(unsigned l);
void unlock(unsigned l);
void disable_interrupts(void);
void enable_interrupts(void);
int copy_from_user(unsigned dst, unsigned src, unsigned n);
#endif
`

// The checker tracks the lock variable so different locks don't get
// conflated, exactly like the paper's per-object analyses.
const checker = `
{ #include "kernel.h" }
sm lock_discipline {
	decl { scalar } l;
	track l;
	unlocked:
	{ lock(l); } ==> locked
	| { unlock(l); } ==> { err("release without acquire"); }
	;
	locked:
	{ unlock(l); } ==> unlocked
	| { lock(l); } ==> { err("double acquire"); }
	;
}
`

const kernelCode = `
#include "kernel.h"

/* ok: classic acquire/release */
void sys_getpid(void) {
	lock(1);
	unlock(1);
}

/* BUG: error path returns with the lock held */
int sys_read(unsigned buf, unsigned n) {
	lock(1);
	if (copy_from_user(buf, 0, n) < 0) {
		return -1;
	}
	unlock(1);
	return 0;
}

/* BUG: retry loop re-acquires without releasing */
void sys_flush(int dirty) {
	lock(2);
	while (dirty) {
		lock(2);
		dirty--;
	}
	unlock(2);
}

/* ok: two different locks interleaved */
void sys_move(void) {
	lock(1);
	lock(2);
	unlock(2);
	unlock(1);
}
`

func main() {
	files := map[string]string{
		"kernel.h": kernelHeader,
		"sys.c":    kernelCode,
	}
	prog, err := flashmc.LoadFiles("kernel", files, []string{"sys.c"})
	if err != nil {
		log.Fatal(err)
	}
	reports, err := flashmc.RunMetal(prog, checker)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lock-discipline checker: %d violation(s)\n", len(reports))
	for _, r := range reports {
		fmt.Printf("  %s: %s (in %s)\n", r.Pos, r.Msg, r.Fn)
	}
	fmt.Println("\nnote: sys_read's leak (return with lock held) needs an at-exit")
	fmt.Println("rule; the Go checker API supports that — see internal/checkers.")
}
