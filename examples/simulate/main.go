// simulate contrasts the two ways of finding protocol bugs the paper
// discusses: exhaustive static checking versus dynamic simulation.
// It seeds the bitvector protocol's corner-case bugs, finds all of
// them statically in one pass, then shows how many randomized
// simulator trials each needed to surface dynamically — the "worst
// category of systems bugs: those that show up sporadically only after
// days of continuous use."
package main

import (
	"fmt"
	"log"

	"flashmc"
)

func main() {
	corpus := flashmc.GenerateCorpus(1)
	p := corpus.Protocol("bitvector")
	prog, err := flashmc.LoadFiles(p.Name, p.Source(), p.RootFiles)
	if err != nil {
		log.Fatal(err)
	}

	// Seeded real bugs (the ground truth the generator planted).
	type key struct {
		file string
		line int
	}
	seeded := map[key]string{}
	for _, s := range p.Manifest {
		if s.Class == "error" {
			seeded[key{s.File, s.Line}] = s.Note
		}
	}
	fmt.Printf("bitvector: %d seeded corner-case bugs\n\n", len(seeded))

	// Static pass: every checker, one run.
	fmt.Println("static checking (one pass over the source):")
	staticHits := map[key]bool{}
	for _, chk := range flashmc.FlashCheckers() {
		for _, r := range chk.Check(prog, p.Spec) {
			k := key{r.Pos.File, r.Pos.Line}
			if note, ok := seeded[k]; ok && !staticHits[k] {
				staticHits[k] = true
				fmt.Printf("  [%s] %s:%d  %s\n", chk.Name(), k.file, k.line, note)
			}
		}
	}
	fmt.Printf("  -> %d/%d found immediately\n\n", len(staticHits), len(seeded))

	// Dynamic pass: randomized simulation.
	trials := 200
	fmt.Printf("dynamic simulation (%d randomized activations per handler):\n", trials)
	res := flashmc.Fuzz(prog, p.Spec, trials, 11)
	byLine := res.ByLine()
	found := 0
	for k, note := range seeded {
		if d, ok := byLine[fmt.Sprintf("%s:%d", k.file, k.line)]; ok {
			found++
			fmt.Printf("  trial %3d: %s:%d  %s\n", d.FirstTrial, k.file, k.line, note)
		} else {
			fmt.Printf("  NEVER    : %s:%d  %s\n", k.file, k.line, note)
		}
	}
	fmt.Printf("  -> %d/%d found, each only after the workload hit its corner case\n",
		found, len(seeded))
}
