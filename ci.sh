#!/bin/sh
# CI entry point. Tier-1 (build + tests) first, then the stricter
# gates: go vet across every package and the test suite again under
# the race detector (the engine and checkers are exercised in parallel
# by the paper-table tests, so data races would hide there).
set -eux

cd "$(dirname "$0")"

go build ./...
go test ./...

go vet ./...
go test -race ./...

# Incremental-analysis gate: checking the generated corpus twice
# through one artifact depot must print byte-identical reports — the
# second (warm) run is served from the cache, and a divergence means
# the depot keys miss an input the checkers depend on. mcheck exits 1
# when it reports, so `|| true` keeps set -e happy.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/flashgen -o "$tmp/corpus"
go build -o "$tmp/mcheck" ./cmd/mcheck
for proto in bitvector dyn_ptr sci coma rac common; do
    "$tmp/mcheck" -flash -cache "$tmp/depot" "$tmp/corpus/$proto"/*.c \
        > "$tmp/cold.$proto" || true
    "$tmp/mcheck" -flash -cache "$tmp/depot" "$tmp/corpus/$proto"/*.c \
        > "$tmp/warm.$proto" || true
    cmp "$tmp/cold.$proto" "$tmp/warm.$proto"
done

# Fused-checking gate: the product automaton (-fused) walks each
# function once for all nine checkers, so (a) its report stream must be
# byte-identical to the sequential engine's over every protocol, (b) a
# fused warm run over the sequential depot above must replay the cold
# bytes (de-fused artifact keys make the caches interchangeable), and
# (c) the fused walk must touch strictly fewer CFG nodes than nine
# sequential walks — otherwise the fusion silently degenerated into
# per-checker runs and the gate is vacuous.
for proto in bitvector dyn_ptr sci coma rac common; do
    "$tmp/mcheck" -flash -stats "$tmp/corpus/$proto"/*.c \
        > "$tmp/fseq.$proto" 2> "$tmp/fseq-stats.$proto" || true
    "$tmp/mcheck" -flash -fused -stats "$tmp/corpus/$proto"/*.c \
        > "$tmp/ffus.$proto" 2> "$tmp/ffus-stats.$proto" || true
    cmp "$tmp/fseq.$proto" "$tmp/ffus.$proto"
    "$tmp/mcheck" -flash -fused -cache "$tmp/depot" "$tmp/corpus/$proto"/*.c \
        > "$tmp/ffus-warm.$proto" || true
    cmp "$tmp/cold.$proto" "$tmp/ffus-warm.$proto"
done
seq_visits=$(awk '$1=="engine_node_visits_total"{s+=$2} END{printf "%.0f", s}' "$tmp"/fseq-stats.*)
fus_visits=$(awk '$1=="engine_node_visits_total"{s+=$2} END{printf "%.0f", s}' "$tmp"/ffus-stats.*)
echo "fused gate: node visits sequential=$seq_visits fused=$fus_visits"
test "$fus_visits" -lt "$seq_visits"

# Depot-churn gate: fill a tiny sharded depot past its byte budget and
# let LRU eviction run between a cold and a warm pass of every
# protocol. Evicted artifacts recompute, surviving ones replay, and
# either way the warm report stream must stay byte-identical to cold;
# the -stats dump must attribute a nonzero depot_gc_evicted_bytes_total
# or the budget never actually evicted and the gate is vacuous.
for proto in bitvector dyn_ptr sci coma rac common; do
    "$tmp/mcheck" -flash -cache "$tmp/churn-depot" -cache-shards 4 \
        -cache-max-bytes 65536 "$tmp/corpus/$proto"/*.c \
        > "$tmp/churn-cold.$proto" || true
    "$tmp/mcheck" -flash -cache "$tmp/churn-depot" -cache-shards 4 \
        -cache-max-bytes 65536 -stats "$tmp/corpus/$proto"/*.c \
        > "$tmp/churn-warm.$proto" 2> "$tmp/churn-stats.$proto" || true
    cmp "$tmp/churn-cold.$proto" "$tmp/churn-warm.$proto"
done
grep "^depot_gc_evicted_bytes_total" "$tmp/churn-stats.common"
! grep -qx "depot_gc_evicted_bytes_total 0" "$tmp/churn-stats.common"

# Observability gate: a real corpus run must emit (a) Prometheus text
# that the repo's own parser accepts and (b) a Chrome trace_event file
# containing at least one complete span. obscheck exits nonzero on
# malformed output; mcheck exits 1 when it reports, hence `|| true`.
"$tmp/mcheck" -flash -cache "$tmp/depot" \
    -trace "$tmp/obs-trace.json" -metrics "$tmp/obs-metrics.txt" \
    "$tmp/corpus/sci"/*.c > /dev/null || true
go run ./cmd/obscheck -prom "$tmp/obs-metrics.txt" -trace "$tmp/obs-trace.json"

# Coverage & performance gate: the corpus coverage run must write a
# valid coverage/v1 artifact (from both mcheck and paperbench), and
# the measured wall time / configs explored must stay within 25% of
# the committed baseline. After an intentional perf or corpus change,
# regenerate it: go run ./cmd/paperbench -bench BENCH_PR4.json
"$tmp/mcheck" -flash -cache "$tmp/depot" -coverage-out "$tmp/mcheck-cov.json" \
    "$tmp/corpus/sci"/*.c > /dev/null 2>&1 || true
go run ./cmd/paperbench -bench "$tmp/bench.json" -gate BENCH_PR4.json \
    -coverage-out "$tmp/paperbench-cov.json"
go run ./cmd/obscheck -coverage "$tmp/mcheck-cov.json" -coverage "$tmp/paperbench-cov.json"

# Symbolic-triage gate: over the seeded corpus the sym ladder must
# keep every one of the 34 true errors certain and demote strictly
# more false-positive sites than slicing's 24 (TestFPTriageSym pins
# the per-checker table against the flashgen manifest). Alongside it,
# the ranked stream must be deterministic: -j 1 cold vs -j 4 warm
# through one verdict depot must print byte-identical rankings.
go test -count=1 -run 'TestFPTriage$|TestFPTriageSym' ./internal/paper/
for proto in bitvector dyn_ptr sci coma rac common; do
    "$tmp/mcheck" -flash -triage sym -j 1 -cache "$tmp/tri-depot" \
        "$tmp/corpus/$proto"/*.c > "$tmp/tri-cold.$proto" || true
    "$tmp/mcheck" -flash -triage sym -j 4 -cache "$tmp/tri-depot" \
        "$tmp/corpus/$proto"/*.c > "$tmp/tri-warm.$proto" || true
    cmp "$tmp/tri-cold.$proto" "$tmp/tri-warm.$proto"
done

# Soundness fuzz: the symbolic evaluator must never refute a path a
# concrete execution can take. Short budget; minimization capped (the
# default spends 60s shrinking every new interesting input).
go test -run FuzzSymEval -fuzz FuzzSymEval -fuzztime 15s -fuzzminimizetime 1x ./internal/sym/

# Distributed-fleet gate: two mcheckworker processes over one shared
# depot, behind mcheckd -workers, must answer the whole corpus
# byte-identically to a plain local mcheckd — and the dispatch counter
# must prove the work actually went over the wire (a fleet that
# silently ran everything locally would pass the diff vacuously).
go build -o "$tmp/mcheckd" ./cmd/mcheckd
go build -o "$tmp/mcheckworker" ./cmd/mcheckworker
go build -o "$tmp/mcheckclient" ./cmd/mcheckclient
"$tmp/mcheckworker" -addr 127.0.0.1:18286 -cache "$tmp/fleet-depot" &
w1=$!
"$tmp/mcheckworker" -addr 127.0.0.1:18287 -cache "$tmp/fleet-depot" &
w2=$!
# -j 4 keeps several tasks in flight so both workers stay busy even
# on a single-core leader (the trace gate below needs spans from two
# distinct worker processes).
"$tmp/mcheckd" -addr 127.0.0.1:18288 -cache "$tmp/fleet-depot" -j 4 \
    -workers 127.0.0.1:18286,127.0.0.1:18287 &
fd=$!
"$tmp/mcheckd" -addr 127.0.0.1:18289 -j 4 &
ld=$!
trap 'kill $w1 $w2 $fd $ld 2>/dev/null || true; rm -rf "$tmp"' EXIT
for port in 18286 18287 18288 18289; do
    "$tmp/mcheckclient" -addr "127.0.0.1:$port" -wait 15s
done
for proto in bitvector dyn_ptr sci coma rac common; do
    "$tmp/mcheckclient" -addr 127.0.0.1:18288 -trace "$tmp/fleet-trace.$proto.json" \
        "$tmp/corpus/$proto"/*.c > "$tmp/fleet.$proto"
    "$tmp/mcheckclient" -addr 127.0.0.1:18289 "$tmp/corpus/$proto"/*.c \
        > "$tmp/fleet-ref.$proto"
    cmp "$tmp/fleet.$proto" "$tmp/fleet-ref.$proto"
done
"$tmp/mcheckclient" -addr 127.0.0.1:18288 -get /metrics > "$tmp/fleet-metrics.txt"
grep "^fleet_tasks_dispatched_total" "$tmp/fleet-metrics.txt"
! grep -qx "fleet_tasks_dispatched_total 0" "$tmp/fleet-metrics.txt"

# Distributed-tracing gate: the merged per-request trace fetched over
# the fleet path must be a valid Chrome trace containing dispatcher
# spans (cat "fleet" on the leader) and execution spans from both
# worker processes — obscheck's per-process breakdown names them, so
# one named mcheckworker lane would mean the fleet traced as a single
# process. The federated /metrics must also parse as one exposition
# with per-worker labeled families.
go run ./cmd/obscheck -trace "$tmp/fleet-trace.sci.json" > "$tmp/fleet-obscheck.txt"
cat "$tmp/fleet-obscheck.txt"
test "$(grep -c 'name="mcheckworker' "$tmp/fleet-obscheck.txt")" -ge 2
grep -q '"cat":"fleet"' "$tmp/fleet-trace.sci.json"
go run ./cmd/obscheck -prom "$tmp/fleet-metrics.txt"
grep -q '^fleet_worker_tasks_total{worker=' "$tmp/fleet-metrics.txt"
kill $w1 $w2 $fd $ld 2>/dev/null || true
wait $w1 $w2 $fd $ld 2>/dev/null || true
trap 'rm -rf "$tmp"' EXIT

# Provenance gate: a fresh depot, three runs of the same corpus.
# (1) The warm re-run's ledger entry must attribute every cache
# decision as a hit — any other nonzero reason means the scheduler
# recomputed (or misattributed) work on identical inputs — and
# -diff cold,warm must print nothing to stdout (empty stdout is the
# diff contract for byte-identical report streams; `cmp` double-checks
# the printed streams). (2) A -version-salt run must miss *every* key
# with reason checker-version-bump while still printing byte-identical
# reports — proving miss attribution tells bumps apart from real work.
rm -rf "$tmp/prov-depot"
"$tmp/mcheck" -flash -cache "$tmp/prov-depot" "$tmp/corpus/sci"/*.c \
    > "$tmp/prov-cold.out" || true
"$tmp/mcheck" -flash -cache "$tmp/prov-depot" "$tmp/corpus/sci"/*.c \
    > "$tmp/prov-warm.out" || true
cmp "$tmp/prov-cold.out" "$tmp/prov-warm.out"
"$tmp/mcheck" -cache "$tmp/prov-depot" -runs > "$tmp/prov-runs.txt"
cat "$tmp/prov-runs.txt"
test "$(wc -l < "$tmp/prov-runs.txt")" -eq 2
cold_id=$(sed -n '1s/ .*//p' "$tmp/prov-runs.txt")
warm_id=$(sed -n '2s/ .*//p' "$tmp/prov-runs.txt")
grep -q "hit=0 " "$tmp/prov-runs.txt"            # cold line: no hits
sed -n 2p "$tmp/prov-runs.txt" | grep -q " new=0 vb=0 oc=0 dep=0 ev=0 rem=0"
"$tmp/mcheck" -cache "$tmp/prov-depot" -diff "$cold_id,$warm_id" \
    > "$tmp/prov-diff.out" 2> "$tmp/prov-diff.err"
cat "$tmp/prov-diff.err"
test ! -s "$tmp/prov-diff.out"
"$tmp/mcheck" -flash -cache "$tmp/prov-depot" -version-salt ci-bump \
    "$tmp/corpus/sci"/*.c > "$tmp/prov-salt.out" || true
cmp "$tmp/prov-cold.out" "$tmp/prov-salt.out"
"$tmp/mcheck" -cache "$tmp/prov-depot" -runs | sed -n 3p | tee "$tmp/prov-salt-line.txt"
grep -q " hit=0 new=0 " "$tmp/prov-salt-line.txt"
grep -q " oc=0 dep=0 ev=0 rem=0" "$tmp/prov-salt-line.txt"
! grep -q " vb=0 " "$tmp/prov-salt-line.txt"
# -explain must name a producer and checker version for a warm report.
"$tmp/mcheck" -flash -cache "$tmp/prov-depot" -explain "$tmp/corpus/sci"/*.c \
    > /dev/null 2> "$tmp/prov-explain.txt" || true
grep -q "producer=pid:" "$tmp/prov-explain.txt"
grep -q "decision=hit" "$tmp/prov-explain.txt"
# The bench trajectory must be appendable: one more entry than
# committed, and the appended entry must carry the fused-vs-sequential
# comparison with identical report streams.
base_entries=$(grep -c '"unix"' BENCH_PR10.json)
cp BENCH_PR10.json "$tmp/traj.json"
go run ./cmd/paperbench -append "$tmp/traj.json"
test "$(grep -c '"unix"' "$tmp/traj.json")" -eq "$((base_entries + 1))"
test "$(grep -c '"identical": true' "$tmp/traj.json")" -eq "$((base_entries + 1))"
