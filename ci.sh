#!/bin/sh
# CI entry point. Tier-1 (build + tests) first, then the stricter
# gates: go vet across every package and the test suite again under
# the race detector (the engine and checkers are exercised in parallel
# by the paper-table tests, so data races would hide there).
set -eux

cd "$(dirname "$0")"

go build ./...
go test ./...

go vet ./...
go test -race ./...
