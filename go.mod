module flashmc

go 1.22
