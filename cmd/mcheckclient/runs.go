package main

// Thin clients for mcheckd's run-ledger routes (cmd/mcheckd/runs.go):
// -runs prints the same greppable lines as `mcheck -runs`, and -diff
// mirrors `mcheck -diff` — report changes to stdout (empty stdout ⇒
// byte-identical streams), perf deltas to stderr — so fleet scripts
// can gate on either binary interchangeably.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
)

// getLedgerJSON fetches base+path and decodes the JSON body into v.
func getLedgerJSON(base, path string, v any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, v)
}

// ledgerReport mirrors engine.Report's wire shape, decoupled from the
// internal package — this client speaks only JSON.
type ledgerReport struct {
	SM    string `json:"SM"`
	Msg   string `json:"Msg"`
	Pos   struct {
		File string `json:"File"`
		Line int    `json:"Line"`
		Col  int    `json:"Col"`
	} `json:"Pos"`
	Trace []json.RawMessage `json:"Trace,omitempty"`
}

func (r ledgerReport) position() string {
	return fmt.Sprintf("%s:%d:%d", r.Pos.File, r.Pos.Line, r.Pos.Col)
}

func runsCmd(base string) int {
	var resp struct {
		Runs []struct {
			ID        string `json:"id"`
			Reports   int    `json:"reports"`
			Tasks     int    `json:"tasks"`
			Decisions string `json:"decisions"`
			ElapsedUS int64  `json:"elapsed_us"`
		} `json:"runs"`
	}
	if err := getLedgerJSON(base, "/debug/runs", &resp); err != nil {
		fmt.Fprintf(os.Stderr, "mcheckclient: runs: %v\n", err)
		return 1
	}
	for _, e := range resp.Runs {
		fmt.Printf("%s reports=%d tasks=%d %s elapsed_ms=%.1f\n",
			e.ID, e.Reports, e.Tasks, e.Decisions, float64(e.ElapsedUS)/1000)
	}
	return 0
}

func diffCmd(base, spec string) int {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fmt.Fprintln(os.Stderr, "mcheckclient: -diff wants two run ids: -diff OLD,NEW")
		return 2
	}
	var diff struct {
		A              string         `json:"a"`
		B              string         `json:"b"`
		SameRequest    bool           `json:"same_request"`
		Identical      bool           `json:"identical"`
		Appeared       []ledgerReport `json:"appeared"`
		Disappeared    []ledgerReport `json:"disappeared"`
		ElapsedDeltaUS int64          `json:"elapsed_delta_us"`
		TaskDeltaUS    int64          `json:"task_delta_us"`
		HitDelta       int            `json:"hit_delta"`
		MissDelta      int            `json:"miss_delta"`
	}
	path := "/debug/runs/diff?a=" + url.QueryEscape(parts[0]) + "&b=" + url.QueryEscape(parts[1])
	if err := getLedgerJSON(base, path, &diff); err != nil {
		fmt.Fprintf(os.Stderr, "mcheckclient: diff: %v\n", err)
		return 2
	}
	printSide := func(sign string, reps []ledgerReport) {
		for _, r := range reps {
			fmt.Printf("%s %s: [%s] %s\n", sign, r.position(), r.SM, r.Msg)
		}
	}
	printSide("-", diff.Disappeared)
	printSide("+", diff.Appeared)
	if diff.Identical {
		fmt.Fprintf(os.Stderr, "diff %s..%s: reports byte-identical\n", diff.A, diff.B)
	} else {
		fmt.Fprintf(os.Stderr, "diff %s..%s: %d appeared, %d disappeared\n",
			diff.A, diff.B, len(diff.Appeared), len(diff.Disappeared))
	}
	fmt.Fprintf(os.Stderr, "perf: elapsed %+.1fms, task time %+.1fms, hits %+d, misses %+d\n",
		float64(diff.ElapsedDeltaUS)/1000, float64(diff.TaskDeltaUS)/1000,
		diff.HitDelta, diff.MissDelta)
	return 0
}

// printFlight fetches the request's flight-recorder events (the fleet
// dispatch/steal/retry sequence stamped with this trace id) and
// prints them to stderr after the trace summary.
func printFlight(base, traceID string) {
	var resp struct {
		FlightEvents []struct {
			Time   string `json:"time"`
			Kind   string `json:"kind"`
			Task   string `json:"task"`
			Worker string `json:"worker"`
			Detail string `json:"detail"`
		} `json:"flight_events"`
	}
	path := "/debug/fleet?trace=" + url.QueryEscape(traceID)
	if err := getLedgerJSON(base, path, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "mcheckclient: flight: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "flight events for trace %s: %d\n", traceID, len(resp.FlightEvents))
	for _, e := range resp.FlightEvents {
		line := fmt.Sprintf("  %s %s", e.Time, e.Kind)
		if e.Task != "" {
			line += " task=" + e.Task
		}
		if e.Worker != "" {
			line += " worker=" + e.Worker
		}
		if e.Detail != "" {
			line += " (" + e.Detail + ")"
		}
		fmt.Fprintln(os.Stderr, line)
	}
}
