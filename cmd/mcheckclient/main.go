// mcheckclient is a small CLI client for mcheckd, used by scripts and
// the CI fleet gate: it posts source files to /check and prints the
// ranked reports (stats omitted — they differ run to run), or fetches
// an arbitrary path, or polls /healthz until a daemon is ready.
//
// Usage:
//
//	mcheckclient -addr host:port file.c...   POST /check, print reports
//	mcheckclient -addr host:port -get /metrics
//	mcheckclient -addr host:port -wait 10s   poll /healthz until 200
//	mcheckclient -addr host:port -trace FILE file.c...
//	             also fetch the request's merged Chrome trace (from
//	             /debug/trace/<X-Trace-Id>) into FILE, then print the
//	             request's flight-recorder events (/debug/fleet?trace=)
//	mcheckclient -addr host:port -runs       list the server's run ledger
//	mcheckclient -addr host:port -diff A,B   compare two ledger entries
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8181", "mcheckd address (host:port)")
	get := flag.String("get", "", "GET this path and print the body instead of posting a check")
	wait := flag.Duration("wait", 0, "poll /healthz until it answers 200 (or this long elapses)")
	triageMode := flag.String("triage", "", "triage_mode for /check (\"slice\" or \"sym\")")
	traceOut := flag.String("trace", "", "after /check, fetch the merged request trace into this file and print the request's flight events")
	runsList := flag.Bool("runs", false, "list the server's run ledger (/debug/runs) and exit")
	diffSpec := flag.String("diff", "", "compare two server ledger runs OLD,NEW (/debug/runs/diff) and exit")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	if *wait > 0 {
		deadline := time.Now().Add(*wait)
		for {
			resp, err := http.Get(base + "/healthz")
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err == nil && resp.StatusCode == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "mcheckclient: %s/healthz not ready after %s\n", base, *wait)
				os.Exit(1)
			}
			time.Sleep(50 * time.Millisecond)
		}
		if *get == "" && flag.NArg() == 0 {
			return
		}
	}

	if *runsList {
		os.Exit(runsCmd(base))
	}
	if *diffSpec != "" {
		os.Exit(diffCmd(base, *diffSpec))
	}

	if *get != "" {
		resp, err := http.Get(base + *get)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcheckclient: %v\n", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		io.Copy(os.Stdout, resp.Body)
		if resp.StatusCode != http.StatusOK {
			os.Exit(1)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "mcheckclient: no input files (and no -get/-wait)")
		os.Exit(2)
	}
	files := map[string]string{}
	for _, path := range flag.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcheckclient: %v\n", err)
			os.Exit(1)
		}
		files[filepath.Base(path)] = string(raw)
	}
	body, _ := json.Marshal(map[string]any{"files": files, "triage_mode": *triageMode})
	resp, err := http.Post(base+"/check", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcheckclient: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcheckclient: %v\n", err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK {
		os.Stderr.Write(raw)
		os.Exit(1)
	}
	// Print only the reports: stats vary between servers and runs, so
	// scripts comparing fleet output against a local run diff this.
	var parsed struct {
		Reports json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		fmt.Fprintf(os.Stderr, "mcheckclient: bad response: %v\n", err)
		os.Exit(1)
	}
	var pretty bytes.Buffer
	json.Indent(&pretty, parsed.Reports, "", "  ")
	pretty.WriteByte('\n')
	os.Stdout.Write(pretty.Bytes())

	if *traceOut != "" {
		// X-Trace-Id names the computation's trace even when this
		// request shared another request's in-flight work; fall back to
		// our own request id.
		id := resp.Header.Get("X-Trace-Id")
		if id == "" {
			id = resp.Header.Get("X-Request-Id")
		}
		if id == "" {
			fmt.Fprintln(os.Stderr, "mcheckclient: server sent no X-Trace-Id/X-Request-Id; cannot fetch trace")
			os.Exit(1)
		}
		tresp, err := http.Get(base + "/debug/trace/" + id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcheckclient: trace: %v\n", err)
			os.Exit(1)
		}
		defer tresp.Body.Close()
		traw, err := io.ReadAll(tresp.Body)
		if err != nil || tresp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "mcheckclient: trace %s: status %d %s\n", id, tresp.StatusCode, traw)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, traw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mcheckclient: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mcheckclient: trace %s written to %s\n", id, *traceOut)
		printFlight(base, id)
	}
}
