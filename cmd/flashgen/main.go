// flashgen writes the synthetic FLASH protocol corpus to disk: the
// five protocols plus common code, each protocol's spec, and the
// ground-truth manifest of seeded defects.
//
// Usage:
//
//	flashgen [-seed N] [-strip-annotations] -o DIR
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
)

func main() {
	out := flag.String("o", "flash-corpus", "output directory")
	seed := flag.Int64("seed", 1, "generation seed")
	strip := flag.Bool("strip-annotations", false, "replace checker annotations with no-ops")
	flag.Parse()

	corpus := flashgen.Generate(flashgen.Options{Seed: *seed, StripAnnotations: *strip})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("%v", err)
	}
	must(os.WriteFile(filepath.Join(*out, "flash-includes.h"), []byte(flash.IncludesH), 0o644))

	totalLOC := 0
	for _, p := range corpus.Protocols {
		dir := filepath.Join(*out, p.Name)
		must(os.MkdirAll(dir, 0o755))
		for name, text := range p.Files {
			must(os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644))
			for _, c := range text {
				if c == '\n' {
					totalLOC++
				}
			}
		}
		writeJSON(filepath.Join(dir, "manifest.json"), p.Manifest)
		writeJSON(filepath.Join(dir, "spec.json"), p.Spec)
		fmt.Printf("%-10s %d files, %d handlers, %d seeded sites\n",
			p.Name, len(p.Files), len(p.Spec.Hardware)+len(p.Spec.Software), len(p.Manifest))
	}
	fmt.Printf("wrote ~%d lines of protocol C to %s\n", totalLOC, *out)
}

func writeJSON(path string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	must(os.WriteFile(path, append(b, '\n'), 0o644))
}

func must(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flashgen: "+format+"\n", args...)
	os.Exit(1)
}
