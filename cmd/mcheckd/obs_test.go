package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flashmc/internal/depot"
	"flashmc/internal/obs"
)

// TestSingleFlightSharesComputation proves the dedupe path: the leader
// is held open until three identical requests have joined its flight,
// so exactly one computation serves all four responses and the shared
// counter records the three followers.
func TestSingleFlightSharesComputation(t *testing.T) {
	store, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(store, 2)
	srv.testLeaderHook = func() {
		// Followers bump the counter at join time, before blocking on
		// the flight, so this wait is race-free.
		deadline := time.Now().Add(10 * time.Second)
		for srv.sfShared.Value() < 3 {
			if time.Now().After(deadline) {
				t.Error("followers never joined the flight")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"files": {"proto.c": ` + mustQuote(fixture) + `}}`
	responses := make([][]byte, 4)
	var wg sync.WaitGroup
	for i := range responses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %s", i, resp.Status)
				return
			}
			if resp.Header.Get("X-Request-Id") == "" {
				t.Errorf("request %d: no X-Request-Id header", i)
			}
			responses[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 1; i < len(responses); i++ {
		if !bytes.Equal(responses[0], responses[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, responses[i], responses[0])
		}
	}
	if got := srv.sfShared.Value(); got != 3 {
		t.Fatalf("mcheckd_singleflight_shared_total = %g, want 3", got)
	}
	// One leader computed; the underlying work was counted once.
	if got := srv.requests.Value(); got != 4 {
		t.Fatalf("mcheckd_requests_total = %g, want 4", got)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mraw), "mcheckd_singleflight_shared_total 3") {
		t.Fatalf("metrics missing shared counter:\n%s", mraw)
	}
}

// TestMetricsExpositionParses gates the /metrics body through the
// same parser ci.sh uses: it must be well-formed Prometheus text and
// include both the per-server and the process-global families.
func TestMetricsExpositionParses(t *testing.T) {
	store, _ := depot.Open("")
	ts := httptest.NewServer(newServer(store, 1))
	defer ts.Close()

	if _, err := http.Post(ts.URL+"/check", "application/json",
		strings.NewReader(`{"files": {"proto.c": `+mustQuote(fixture)+`}}`)); err != nil {
		t.Fatal(err)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	fams, err := obs.ParsePrometheus(mr.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
	byName := map[string]*obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"mcheckd_requests_total",
		"mcheckd_singleflight_shared_total",
		"mcheckd_depot_entries",
		"engine_runs_total", // process-global registry rides along
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("metrics missing family %q", want)
		}
	}
	if f := byName["mcheckd_request_seconds_total"]; f.Type != "counter" {
		t.Errorf("mcheckd_request_seconds_total type = %q, want counter", f.Type)
	}
}

// TestReportsCarryWitnessTraces pins the JSON surface of witness
// traces: every report has a non-empty trace whose final step lands on
// the report position.
func TestReportsCarryWitnessTraces(t *testing.T) {
	store, _ := depot.Open("")
	ts := httptest.NewServer(newServer(store, 1))
	defer ts.Close()

	cr, raw := postCheck(t, ts, `{"files": {"proto.c": `+mustQuote(fixture)+`}}`)
	if len(cr.Reports) == 0 {
		t.Fatalf("no reports:\n%s", raw)
	}
	for _, r := range cr.Reports {
		if len(r.Trace) == 0 {
			t.Errorf("report %s/%s has no witness trace", r.Checker, r.Msg)
			continue
		}
		last := r.Trace[len(r.Trace)-1]
		if last.File != r.File || last.Line != r.Line {
			t.Errorf("report at %s:%d: final trace step at %s:%d", r.File, r.Line, last.File, last.Line)
		}
	}
}
