package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"flashmc/internal/depot"
)

// TestServerProgramCacheWarmPath: the second identical /check must be
// served from the program cache — frontend skipped, visible as
// mcheckd_program_cache_hits_total > 0 — with reports byte-identical
// to the cold request. Runs on a sharded depot so the per-shard
// occupancy gauge is exercised too.
func TestServerProgramCacheWarmPath(t *testing.T) {
	store, err := depot.OpenSharded(filepath.Join(t.TempDir(), "depot"), 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, 2))
	defer ts.Close()

	body := `{"files": {"proto.c": ` + mustQuote(fixture) + `}}`
	cold, coldRaw := postCheck(t, ts, body)
	warm, warmRaw := postCheck(t, ts, body)

	coldReports, _ := json.Marshal(cold.Reports)
	warmReports, _ := json.Marshal(warm.Reports)
	if !bytes.Equal(coldReports, warmReports) {
		t.Fatalf("warm reports differ from cold:\ncold %s\nwarm %s", coldRaw, warmRaw)
	}
	if warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed %d depot artifacts", warm.Stats.CacheMisses)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	metrics := string(mraw)
	if !strings.Contains(metrics, "mcheckd_program_cache_hits_total 1") {
		t.Errorf("warm request did not hit the program cache:\n%s", grepMetrics(metrics, "program_cache"))
	}
	if !strings.Contains(metrics, "mcheckd_program_cache_misses_total 1") {
		t.Errorf("cold request not counted as a program-cache miss:\n%s", grepMetrics(metrics, "program_cache"))
	}
	// Both shard roots are reported (value may be zero if every
	// artifact of this tiny corpus landed in one shard).
	for _, want := range []string{`depot_shard_bytes{shard="0"}`, `depot_shard_bytes{shard="1"}`} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s:\n%s", want, grepMetrics(metrics, "depot_shard"))
		}
	}

	// A request for a different tree must parse (no false hits).
	other := `{"files": {"other.c": ` + mustQuote(strings.Replace(fixture, "h_local_get", "h_other_get", 1)) + `}}`
	postCheck(t, ts, other)
	mr2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw2, _ := io.ReadAll(mr2.Body)
	mr2.Body.Close()
	if !strings.Contains(string(mraw2), "mcheckd_program_cache_misses_total 2") {
		t.Errorf("distinct tree did not miss the program cache:\n%s", grepMetrics(string(mraw2), "program_cache"))
	}
}

// grepMetrics returns the lines of a metrics dump mentioning substr,
// to keep failure output readable.
func grepMetrics(metrics, substr string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
