// mcheckd is the long-running analysis service: the same
// depot-backed parallel scheduler cmd/mcheck runs once per
// invocation, kept warm behind HTTP so repeated checks of an evolving
// protocol tree pay only for what changed.
//
// Usage:
//
//	mcheckd [-addr :8181] [-cache DIR] [-cache-shards N]
//	        [-cache-max-bytes N] [-j N] [-gc AGE]
//
// Endpoints:
//
//	POST /check    JSON {files, roots?, checkers?, flash?, triage?} in,
//	               ranked reports + cache/scheduler statistics out.
//	               Unchanged functions ride the warm-cache path.
//	GET  /metrics  Prometheus text: request/task counters and
//	               latencies, cache hit rate, queue depth, depot size,
//	               plus the process-wide engine/sched/depot metrics.
//	GET  /healthz  liveness probe.
//	GET  /debug/pprof/*  runtime profiles (CPU, heap, goroutines).
//
// Identical concurrent /check requests (same program fingerprint, job
// list, and triage mode) are deduplicated: one computes, the rest
// share its response. Every response carries an X-Request-Id header
// that also tags the server's structured log lines.
//
// -cache names the artifact depot shared with mcheck -cache; without
// it the depot lives in memory for the life of the process (still
// warm across requests). -cache-shards fans the depot out over N
// independently locked shard roots (0 adopts whatever layout the
// directory already holds; the count is pinned in the depot's DEPOT
// manifest and a mismatch refuses to start); -cache-shard-paths pins
// each shard root at an explicit absolute path, so shards span
// volumes. -gc prunes depot entries unused for the given age;
// -cache-max-bytes bounds the depot, with least-recently-used
// artifacts evicted first. Either option sweeps once at startup and
// then by write pressure: the Put that crosses -gc-pressure-bytes of
// writes since the last sweep runs the next one.
//
// -workers host:port,... fans cache-missed analysis tasks out over a
// fleet of mcheckworker processes sharing the -cache depot, with
// work-stealing, retry, and transparent local fallback; responses
// stay byte-identical to local runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strings"

	"flashmc/internal/depot"
	"flashmc/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8181", "listen address")
	cacheDir := flag.String("cache", "", "artifact depot directory (default: in-memory, per-process)")
	cacheShards := flag.Int("cache-shards", 0, "depot shard count (0: adopt the directory's existing layout)")
	cacheShardPaths := flag.String("cache-shard-paths", "", "comma-separated absolute shard root paths (overrides -cache-shards; lets shards span volumes)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "if set, evict least-recently-used depot artifacts beyond this many bytes")
	workers := flag.Int("j", 0, "parallel analysis workers (default GOMAXPROCS)")
	gcAge := flag.Duration("gc", 0, "if set, evict depot entries unused for this long (swept at startup and under write pressure)")
	gcPressure := flag.Int64("gc-pressure-bytes", 0, "bytes written between GC sweeps (default: -cache-max-bytes/8, else 8MiB)")
	fleetAddrs := flag.String("workers", "", "comma-separated mcheckworker addresses (host:port) sharing the -cache depot")
	taskTimeout := flag.Duration("task-timeout", 0, "per-attempt deadline for remote fleet tasks (default 2m)")
	flag.Parse()

	// -j must be a positive worker count; unset means every CPU.
	jSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "j" {
			jSet = true
		}
	})
	if jSet && *workers < 1 {
		fmt.Fprintf(os.Stderr, "mcheckd: -j %d: worker count must be >= 1\n", *workers)
		os.Exit(2)
	}
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}

	var store *depot.Depot
	var err error
	if *cacheShardPaths != "" {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "mcheckd: -cache-shard-paths requires -cache (the manifest lives there)")
			os.Exit(2)
		}
		store, err = depot.OpenShardedAt(*cacheDir, strings.Split(*cacheShardPaths, ","))
	} else {
		store, err = depot.OpenSharded(*cacheDir, *cacheShards)
	}
	if err != nil {
		log.Fatalf("mcheckd: %v", err)
	}
	if *gcAge > 0 || *cacheMaxBytes > 0 {
		if n, err := store.GC(*gcAge, *cacheMaxBytes); err != nil {
			log.Printf("mcheckd: gc: %v", err)
		} else if n > 0 {
			log.Printf("mcheckd: gc evicted %d entries", n)
		}
		// After the startup sweep, GC runs on write pressure: the Put
		// that crosses the byte threshold sweeps. An idle depot is
		// never walked; a hot one is swept in proportion to its growth.
		threshold := *gcPressure
		if threshold <= 0 {
			threshold = *cacheMaxBytes / 8
		}
		if threshold <= 0 {
			threshold = 8 << 20
		}
		store.SetGCPolicy(*gcAge, *cacheMaxBytes, threshold)
	}

	srv := newServer(store, *workers)
	if *fleetAddrs != "" {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "mcheckd: -workers requires -cache (the fleet shares artifacts through the depot)")
			os.Exit(2)
		}
		addrs := strings.Split(*fleetAddrs, ",")
		disp := fleet.New(addrs, fleet.Options{TaskTimeout: *taskTimeout})
		srv.setFleet(disp)
		log.Printf("mcheckd: dispatching to %d workers: %s", disp.Workers(), *fleetAddrs)
	}
	log.Printf("mcheckd: listening on %s (cache=%q workers=%d)", *addr, *cacheDir, *workers)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
