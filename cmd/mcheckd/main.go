// mcheckd is the long-running analysis service: the same
// depot-backed parallel scheduler cmd/mcheck runs once per
// invocation, kept warm behind HTTP so repeated checks of an evolving
// protocol tree pay only for what changed.
//
// Usage:
//
//	mcheckd [-addr :8181] [-cache DIR] [-cache-shards N]
//	        [-cache-max-bytes N] [-j N] [-gc AGE]
//
// Endpoints:
//
//	POST /check    JSON {files, roots?, checkers?, flash?, triage?} in,
//	               ranked reports + cache/scheduler statistics out.
//	               Unchanged functions ride the warm-cache path.
//	GET  /metrics  Prometheus text: request/task counters and
//	               latencies, cache hit rate, queue depth, depot size,
//	               plus the process-wide engine/sched/depot metrics.
//	GET  /healthz  liveness probe.
//	GET  /debug/pprof/*  runtime profiles (CPU, heap, goroutines).
//
// Identical concurrent /check requests (same program fingerprint, job
// list, and triage mode) are deduplicated: one computes, the rest
// share its response. Every response carries an X-Request-Id header
// that also tags the server's structured log lines.
//
// -cache names the artifact depot shared with mcheck -cache; without
// it the depot lives in memory for the life of the process (still
// warm across requests). -cache-shards fans the depot out over N
// independently locked shard roots (0 adopts whatever layout the
// directory already holds; the count is pinned in the depot's DEPOT
// manifest and a mismatch refuses to start). -gc prunes depot entries
// unused for the given age; -cache-max-bytes bounds the depot, with
// least-recently-used artifacts evicted first. Either option starts a
// background sweeper (interval: the GC age when set, else one
// minute).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"flashmc/internal/depot"
)

func main() {
	addr := flag.String("addr", ":8181", "listen address")
	cacheDir := flag.String("cache", "", "artifact depot directory (default: in-memory, per-process)")
	cacheShards := flag.Int("cache-shards", 0, "depot shard count (0: adopt the directory's existing layout)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "if set, evict least-recently-used depot artifacts beyond this many bytes")
	workers := flag.Int("j", 0, "parallel analysis workers (default GOMAXPROCS)")
	gcAge := flag.Duration("gc", 0, "if set, evict depot entries unused for this long (runs at startup and periodically)")
	flag.Parse()

	// -j must be a positive worker count; unset means every CPU.
	jSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "j" {
			jSet = true
		}
	})
	if jSet && *workers < 1 {
		fmt.Fprintf(os.Stderr, "mcheckd: -j %d: worker count must be >= 1\n", *workers)
		os.Exit(2)
	}
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}

	store, err := depot.OpenSharded(*cacheDir, *cacheShards)
	if err != nil {
		log.Fatalf("mcheckd: %v", err)
	}
	if *gcAge > 0 || *cacheMaxBytes > 0 {
		sweep := func() {
			if n, err := store.GC(*gcAge, *cacheMaxBytes); err != nil {
				log.Printf("mcheckd: gc: %v", err)
			} else if n > 0 {
				log.Printf("mcheckd: gc evicted %d entries", n)
			}
		}
		sweep()
		// Sweep on the age cadence when one is set; a pure byte budget
		// has no natural period, so sweep once a minute.
		interval := *gcAge
		if interval <= 0 {
			interval = time.Minute
		}
		go func() {
			for range time.Tick(interval) {
				sweep()
			}
		}()
	}

	srv := newServer(store, *workers)
	log.Printf("mcheckd: listening on %s (cache=%q workers=%d)", *addr, *cacheDir, *workers)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
