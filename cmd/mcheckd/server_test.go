package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flashmc/internal/depot"
)

// fixture has one hardware handler that reads the MISCBUS data buffer
// twice but only waits once: exactly one buffer_race report.
const fixture = `#include "flash-includes.h"
void h_local_get(void) {
    unsigned a;
    unsigned b;
    MISCBUS_READ_DB(a, b);
    WAIT_FOR_DB_FULL(a);
    MISCBUS_READ_DB(a, b);
}
`

func postCheck(t *testing.T, ts *httptest.Server, body string) (checkResponse, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /check: %s\n%s", resp.Status, raw)
	}
	var cr checkResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, raw)
	}
	return cr, raw
}

func TestServerEndToEnd(t *testing.T) {
	store, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, 2))
	defer ts.Close()

	body := `{"files": {"proto.c": ` + mustQuote(fixture) + `}, "triage": true}`

	// Cold: the report is found and everything misses the cache.
	cold, coldRaw := postCheck(t, ts, body)
	// The buffer_race checker runs the wait_for_db machine; reports
	// carry the machine name, as in mcheck's output.
	var race []reportJSON
	for _, r := range cold.Reports {
		if r.Checker == "wait_for_db" {
			race = append(race, r)
		}
	}
	if len(race) != 1 {
		t.Fatalf("want 1 wait_for_db report, got %d\n%s", len(race), coldRaw)
	}
	if race[0].Fn != "h_local_get" || race[0].Line == 0 {
		t.Fatalf("report lacks location: %+v", race[0])
	}
	if race[0].Confidence == "" {
		t.Fatalf("triage requested but report unranked: %+v", race[0])
	}
	if cold.Stats.CacheMisses == 0 || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold stats: %+v", cold.Stats)
	}

	// Warm: identical request, zero misses, byte-identical reports.
	warm, warmRaw := postCheck(t, ts, body)
	if warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed %d times (reanalyzed %v)", warm.Stats.CacheMisses, warm.Stats.Reanalyzed)
	}
	if warm.Stats.CacheHits == 0 {
		t.Fatal("warm run recorded no hits")
	}
	coldReports, _ := json.Marshal(cold.Reports)
	warmReports, _ := json.Marshal(warm.Reports)
	if !bytes.Equal(coldReports, warmReports) {
		t.Fatalf("warm reports differ:\ncold %s\nwarm %s", coldRaw, warmRaw)
	}

	// Healthz.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", hr.Status)
	}

	// Metrics reflect the two requests and the warm hit traffic.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	metrics := string(mraw)
	for _, want := range []string{
		"mcheckd_requests_total 2",
		"mcheckd_cache_hits_total",
		"mcheckd_cache_hit_rate",
		"mcheckd_queue_depth_max",
		"# TYPE mcheckd_request_seconds_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, "mcheckd_cache_misses_total 0\n") {
		t.Error("metrics claim zero misses after a cold run")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	store, _ := depot.Open("")
	ts := httptest.NewServer(newServer(store, 1))
	defer ts.Close()

	get, err := http.Get(ts.URL + "/check")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /check: %s", get.Status)
	}

	for name, body := range map[string]string{
		"bad json": `{`,
		"no files": `{"files": {}}`,
		"no roots": `{"files": {"notes.h": "int x;"}}`,
	} {
		resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %s, want 400", name, resp.Status)
		}
	}

	// A parse error is reported, not checked.
	resp, err := http.Post(ts.URL+"/check", "application/json",
		strings.NewReader(`{"files": {"broken.c": "void f( {"}}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("parse error: got %s, want 422\n%s", resp.Status, raw)
	}
	var cr checkResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.ParseErrors) == 0 {
		t.Fatalf("no parse_errors in %s", raw)
	}
}

func mustQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
