package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/lint"
	"flashmc/internal/sched"
)

// checkRequest is the POST /check body. Files maps file names to
// contents; flash-includes.h is provided by the server. Roots are the
// translation units to parse (default: every *.c file, sorted).
// Checkers maps names to ad-hoc metal checker sources. Flash selects
// the built-in suite (default true). Triage replays each SM report
// over feasible paths and ranks it certain / likely-fp.
type checkRequest struct {
	Files    map[string]string `json:"files"`
	Roots    []string          `json:"roots,omitempty"`
	Checkers map[string]string `json:"checkers,omitempty"`
	Flash    *bool             `json:"flash,omitempty"`
	Triage   bool              `json:"triage,omitempty"`
}

type reportJSON struct {
	Checker    string `json:"checker"`
	Rule       string `json:"rule,omitempty"`
	Fn         string `json:"fn,omitempty"`
	File       string `json:"file,omitempty"`
	Line       int    `json:"line,omitempty"`
	Col        int    `json:"col,omitempty"`
	Msg        string `json:"msg"`
	Confidence string `json:"confidence,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

type statsJSON struct {
	Functions     int      `json:"functions"`
	Tasks         int      `json:"tasks"`
	MaxQueueDepth int      `json:"max_queue_depth"`
	CacheHits     int      `json:"cache_hits"`
	CacheMisses   int      `json:"cache_misses"`
	Reanalyzed    []string `json:"reanalyzed,omitempty"`
	GlobalReruns  int      `json:"global_reruns"`
	ElapsedMS     float64  `json:"elapsed_ms"`
	TaskMS        float64  `json:"task_ms"`
}

type checkResponse struct {
	Reports     []reportJSON `json:"reports"`
	ParseErrors []string     `json:"parse_errors,omitempty"`
	Stats       statsJSON    `json:"stats"`
}

// server owns one analyzer over one depot; every request shares the
// cache, which is what makes the second check of a tree warm.
type server struct {
	analyzer *sched.Analyzer
	store    *depot.Depot
	mux      *http.ServeMux

	requests  atomic.Uint64
	errored   atomic.Uint64
	reqNanos  atomic.Uint64
	tasks     atomic.Uint64
	taskNanos atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	inflight  atomic.Int64
	queueMax  atomic.Int64
}

func newServer(store *depot.Depot, workers int) *server {
	s := &server{
		analyzer: &sched.Analyzer{Depot: store, Workers: workers},
		store:    store,
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("/check", s.handleCheck)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errored.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	s.requests.Add(1)
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.reqNanos.Add(uint64(time.Since(start)))
	}()

	var req checkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Files) == 0 {
		s.fail(w, http.StatusBadRequest, "no files")
		return
	}
	roots := req.Roots
	if len(roots) == 0 {
		for name := range req.Files {
			if strings.HasSuffix(name, ".c") {
				roots = append(roots, name)
			}
		}
		sort.Strings(roots)
	}
	if len(roots) == 0 {
		s.fail(w, http.StatusBadRequest, "no roots (no *.c files)")
		return
	}

	prog, err := core.Load("mcheckd", cpp.Layered(cpp.MapSource(req.Files), flash.HeaderSource()), roots)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "load: %v", err)
		return
	}
	resp := checkResponse{Reports: []reportJSON{}}
	for _, e := range prog.ParseErrors {
		resp.ParseErrors = append(resp.ParseErrors, e.Error())
	}
	if len(resp.ParseErrors) > 0 {
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}

	// Assemble jobs exactly like cmd/mcheck: ad-hoc checkers first
	// (sorted by name — the request carries them in a map), then the
	// built-in suite. smByName keeps each SM job's machine for triage.
	spec := sched.ConventionSpec(prog)
	specOpt := sched.SpecHash(spec)
	var jobs []sched.Job
	smByName := map[string]*engine.SM{}
	adhoc := make([]string, 0, len(req.Checkers))
	for name := range req.Checkers {
		adhoc = append(adhoc, name)
	}
	sort.Strings(adhoc)
	for _, name := range adhoc {
		src := req.Checkers[name]
		mp, err := prog.CompileChecker(src)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "checker %s: %v", name, err)
			return
		}
		srcHash := sha256.Sum256([]byte(src))
		jobs = append(jobs, sched.Job{Name: mp.Name, Version: "adhoc-" + hex.EncodeToString(srcHash[:8]),
			Options: specOpt, SM: mp.SM})
		smByName[mp.SM.Name] = mp.SM
	}
	if req.Flash == nil || *req.Flash {
		jobs = append(jobs, sched.FlashJobs(spec)...)
		// Reports carry the SM's own name, which can differ from the
		// registry name (buffer_race runs the wait_for_db machine), so
		// the triage map keys on sm.Name.
		for _, chk := range checkers.All() {
			if prov, ok := chk.(checkers.SMProvider); ok {
				sm, _ := prov.BuildSM(spec)
				smByName[sm.Name] = sm
			}
		}
	}
	if len(jobs) == 0 {
		s.fail(w, http.StatusBadRequest, "nothing to run: flash disabled and no ad-hoc checkers")
		return
	}

	res, err := s.analyzer.Check(sched.Request{Prog: prog, Spec: spec, Jobs: jobs})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "check: %v", err)
		return
	}
	s.tasks.Add(uint64(res.Stats.Tasks))
	s.taskNanos.Add(uint64(res.Stats.TaskTime))
	s.hits.Add(uint64(res.Stats.CacheHits))
	s.misses.Add(uint64(res.Stats.CacheMisses))
	for {
		cur := s.queueMax.Load()
		if int64(res.Stats.MaxQueueDepth) <= cur ||
			s.queueMax.CompareAndSwap(cur, int64(res.Stats.MaxQueueDepth)) {
			break
		}
	}

	resp.Reports = rankReports(prog, res.Reports, smByName, req.Triage)
	resp.Stats = statsJSON{
		Functions:     res.Stats.Functions,
		Tasks:         res.Stats.Tasks,
		MaxQueueDepth: res.Stats.MaxQueueDepth,
		CacheHits:     res.Stats.CacheHits,
		CacheMisses:   res.Stats.CacheMisses,
		Reanalyzed:    res.Stats.Reanalyzed,
		GlobalReruns:  res.Stats.GlobalReruns,
		ElapsedMS:     float64(res.Stats.Elapsed) / float64(time.Millisecond),
		TaskMS:        float64(res.Stats.TaskTime) / float64(time.Millisecond),
	}
	writeJSON(w, http.StatusOK, resp)
}

// rankReports orders the combined report stream for the response:
// with triage, each SM report is replayed over feasible paths and
// certain reports rank above likely false positives; within a rank,
// position order. Without triage every report keeps the CLI's
// position order and carries no confidence.
func rankReports(prog *core.Program, reports []engine.Report, smByName map[string]*engine.SM, triage bool) []reportJSON {
	ranked := make([]lint.RankedReport, 0, len(reports))
	if triage {
		// Group by checker, preserving order, so TriageProgram sees
		// each machine's reports together.
		var order []string
		byChecker := map[string][]engine.Report{}
		for _, r := range reports {
			if _, ok := byChecker[r.SM]; !ok {
				order = append(order, r.SM)
			}
			byChecker[r.SM] = append(byChecker[r.SM], r)
		}
		for _, name := range order {
			if sm := smByName[name]; sm != nil {
				ranked = append(ranked, lint.TriageProgram(prog, sm, byChecker[name], lint.TriageOptions{})...)
			} else {
				ranked = append(ranked, lint.PassThrough(byChecker[name], "not an SM checker; not triaged")...)
			}
		}
	} else {
		for _, r := range reports {
			ranked = append(ranked, lint.RankedReport{Report: r})
		}
	}

	rank := func(c lint.Confidence) int {
		if c == lint.LikelyFP {
			return 1
		}
		return 0
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if triage && rank(a.Confidence) != rank(b.Confidence) {
			return rank(a.Confidence) < rank(b.Confidence)
		}
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		return a.Pos.Line < b.Pos.Line
	})

	out := make([]reportJSON, 0, len(ranked))
	for _, r := range ranked {
		out = append(out, reportJSON{
			Checker:    r.SM,
			Rule:       r.Rule,
			Fn:         r.Fn,
			File:       r.Pos.File,
			Line:       r.Pos.Line,
			Col:        r.Pos.Col,
			Msg:        r.Msg,
			Confidence: string(r.Confidence),
			Reason:     r.Reason,
		})
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ds := s.store.Stats()
	hits, misses := s.hits.Load(), s.misses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m := func(name, typ, help string, val any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, val)
	}
	m("mcheckd_requests_total", "counter", "POST /check requests received", s.requests.Load())
	m("mcheckd_request_errors_total", "counter", "requests answered with an error status", s.errored.Load())
	m("mcheckd_request_seconds_total", "counter", "wall time spent serving /check",
		float64(s.reqNanos.Load())/1e9)
	m("mcheckd_inflight_requests", "gauge", "/check requests currently executing", s.inflight.Load())
	m("mcheckd_tasks_total", "counter", "scheduler tasks executed", s.tasks.Load())
	m("mcheckd_task_seconds_total", "counter", "cumulative task execution time",
		float64(s.taskNanos.Load())/1e9)
	m("mcheckd_queue_depth_max", "gauge", "largest ready-queue depth seen in any request", s.queueMax.Load())
	m("mcheckd_cache_hits_total", "counter", "depot lookups served from cache", hits)
	m("mcheckd_cache_misses_total", "counter", "depot lookups that required analysis", misses)
	m("mcheckd_cache_hit_rate", "gauge", "hits / (hits + misses) over the process lifetime", rate)
	m("mcheckd_depot_entries", "gauge", "artifacts currently in the depot", ds.Entries)
	m("mcheckd_depot_bytes", "gauge", "bytes of artifacts currently in the depot", ds.Bytes)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
