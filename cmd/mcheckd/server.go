package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/cover"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/fleet"
	"flashmc/internal/lint"
	"flashmc/internal/obs"
	"flashmc/internal/sched"
)

// checkRequest is the POST /check body. Files maps file names to
// contents; flash-includes.h is provided by the server. Roots are the
// translation units to parse (default: every *.c file, sorted).
// Checkers maps names to ad-hoc metal checker sources. Flash selects
// the built-in suite (default true). Triage replays each SM report
// over feasible paths and ranks it certain / likely-fp; TriageMode
// picks the ladder ("slice", or "sym" to add the bounded symbolic
// evaluator, whose refutations rank infeasible) and implies Triage.
// Verdicts are cached in the server depot, so a warm re-triage of an
// unchanged tree skips path replay.
type checkRequest struct {
	Files      map[string]string `json:"files"`
	Roots      []string          `json:"roots,omitempty"`
	Checkers   map[string]string `json:"checkers,omitempty"`
	Flash      *bool             `json:"flash,omitempty"`
	Triage     bool              `json:"triage,omitempty"`
	TriageMode string            `json:"triage_mode,omitempty"`
}

// triageMode resolves the request's effective triage ladder: the
// empty mode means triage is off.
func (r checkRequest) triageMode() (lint.TriageMode, bool) {
	switch r.TriageMode {
	case "":
		if r.Triage {
			return lint.ModeSlice, true
		}
		return "", true
	case "slice":
		return lint.ModeSlice, true
	case "sym":
		return lint.ModeSym, true
	}
	return "", false
}

type traceStepJSON struct {
	File     string            `json:"file,omitempty"`
	Line     int               `json:"line,omitempty"`
	Col      int               `json:"col,omitempty"`
	Rule     string            `json:"rule,omitempty"`
	From     string            `json:"from,omitempty"`
	To       string            `json:"to,omitempty"`
	Event    string            `json:"event,omitempty"`
	Bindings map[string]string `json:"bindings,omitempty"`
}

type reportJSON struct {
	Checker    string          `json:"checker"`
	Rule       string          `json:"rule,omitempty"`
	Fn         string          `json:"fn,omitempty"`
	File       string          `json:"file,omitempty"`
	Line       int             `json:"line,omitempty"`
	Col        int             `json:"col,omitempty"`
	Msg        string          `json:"msg"`
	Confidence string          `json:"confidence,omitempty"`
	Reason     string          `json:"reason,omitempty"`
	Trace      []traceStepJSON `json:"trace,omitempty"`
}

type statsJSON struct {
	Functions     int      `json:"functions"`
	Tasks         int      `json:"tasks"`
	MaxQueueDepth int      `json:"max_queue_depth"`
	CacheHits     int      `json:"cache_hits"`
	CacheMisses   int      `json:"cache_misses"`
	Reanalyzed    []string `json:"reanalyzed,omitempty"`
	GlobalReruns  int      `json:"global_reruns"`
	ElapsedMS     float64  `json:"elapsed_ms"`
	TaskMS        float64  `json:"task_ms"`
	QueueWaitMS   float64  `json:"queue_wait_ms"`
	// Decisions breaks cache lookups down by reason; RunID names the
	// run's ledger entry (GET /debug/runs/<id>).
	Decisions map[string]int `json:"decisions,omitempty"`
	RunID     string         `json:"run_id,omitempty"`
}

type checkResponse struct {
	Reports     []reportJSON `json:"reports"`
	ParseErrors []string     `json:"parse_errors,omitempty"`
	Stats       statsJSON    `json:"stats"`
}

// flight is one in-progress /check computation shared by identical
// concurrent requests; followers wait on done and reuse the outcome.
type flight struct {
	done    chan struct{}
	code    int
	resp    checkResponse
	err     string // non-empty: the leader failed with this message
	traceID string // the leader's request id; followers echo it in X-Trace-Id
}

// traceRingCap bounds how many merged request traces the server keeps
// for /debug/trace; the oldest is evicted FIFO.
const traceRingCap = 32

// server owns one analyzer over one depot; every request shares the
// cache, which is what makes the second check of a tree warm. Metrics
// live in a per-server obs.Registry so concurrent servers (tests) do
// not share counters; /metrics appends the process-global obs.Default
// registry (engine, sched, depot metrics) after it.
type server struct {
	analyzer  *sched.Analyzer
	store     *depot.Depot
	progCache *sched.ProgramCache
	mux       *http.ServeMux
	reg       *obs.Registry
	coverage  *cover.Set
	fleet     *fleet.Dispatcher

	requests    *obs.Counter
	errored     *obs.Counter
	reqSeconds  *obs.Counter
	tasks       *obs.Counter
	taskSeconds *obs.Counter
	hits        *obs.Counter
	misses      *obs.Counter
	sfShared    *obs.Counter
	pcHits      *obs.Counter
	pcMisses    *obs.Counter
	inflight    *obs.Gauge
	queueMax    *obs.Gauge
	shardBytes  *obs.GaugeVec

	nextReqID atomic.Uint64

	flightMu sync.Mutex
	flights  map[string]*flight

	// traceMu guards the bounded ring of merged request traces served
	// by /debug/trace/<id>.
	traceMu    sync.Mutex
	traces     map[string][]obs.Event
	traceOrder []string

	// testLeaderHook, when set, runs in the leader between claiming a
	// flight and computing it — lets tests hold the leader open while
	// followers pile onto the flight.
	testLeaderHook func()
}

func newServer(store *depot.Depot, workers int) *server {
	reg := obs.NewRegistry()
	covSet := cover.NewSet()
	s := &server{
		analyzer:  &sched.Analyzer{Depot: store, Workers: workers, Coverage: covSet},
		store:     store,
		progCache: &sched.ProgramCache{Depot: store},
		mux:       http.NewServeMux(),
		reg:       reg,
		coverage:  covSet,
		flights:   map[string]*flight{},
		traces:    map[string][]obs.Event{},

		requests:    reg.Counter("mcheckd_requests_total", "POST /check requests received"),
		errored:     reg.Counter("mcheckd_request_errors_total", "requests answered with an error status"),
		reqSeconds:  reg.Counter("mcheckd_request_seconds_total", "wall time spent serving /check"),
		tasks:       reg.Counter("mcheckd_tasks_total", "scheduler tasks executed"),
		taskSeconds: reg.Counter("mcheckd_task_seconds_total", "cumulative task execution time"),
		hits:        reg.Counter("mcheckd_cache_hits_total", "depot lookups served from cache"),
		misses:      reg.Counter("mcheckd_cache_misses_total", "depot lookups that required analysis"),
		sfShared:    reg.Counter("mcheckd_singleflight_shared_total", "/check requests that shared an identical in-flight computation"),
		pcHits:      reg.Counter("mcheckd_program_cache_hits_total", "/check requests whose parsed program was served from the program cache (frontend skipped)"),
		pcMisses:    reg.Counter("mcheckd_program_cache_misses_total", "/check requests that ran the frontend"),
		inflight:    reg.Gauge("mcheckd_inflight_requests", "/check requests currently executing"),
		queueMax:    reg.Gauge("mcheckd_queue_depth_max", "largest ready-queue depth seen in any request"),
		shardBytes:  reg.GaugeVec("depot_shard_bytes", "bytes of artifacts per depot shard", "shard"),
	}
	reg.GaugeFunc("mcheckd_cache_hit_rate", "hits / (hits + misses) over the process lifetime", func() float64 {
		h, m := s.hits.Value(), s.misses.Value()
		if h+m == 0 {
			return 0
		}
		return h / (h + m)
	})
	reg.GaugeFunc("mcheckd_depot_entries", "artifacts currently in the depot", func() float64 {
		return float64(s.store.Stats().Entries)
	})
	reg.GaugeFunc("mcheckd_depot_bytes", "bytes of artifacts currently in the depot", func() float64 {
		return float64(s.store.Stats().Bytes)
	})

	s.mux.HandleFunc("/check", s.handleCheck)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/coverage", s.handleCoverage)
	s.mux.HandleFunc("/debug/timings", s.handleTimings)
	s.mux.HandleFunc("/debug/trace/", s.handleTrace)
	s.mux.HandleFunc("/debug/fleet", s.handleFleet)
	s.mux.HandleFunc("/debug/runs", s.handleRuns)
	s.mux.HandleFunc("/debug/runs/", s.handleRuns)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// setFleet routes cache-missed scheduler tasks through the worker
// dispatcher. Must be called before serving traffic.
func (s *server) setFleet(d *fleet.Dispatcher) {
	s.fleet = d
	s.analyzer.Remote = d
}

func (s *server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errored.Inc()
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Reuse the caller's request id when it sent one, so traces and
	// logs correlate across hops; otherwise mint a process-local id.
	// The id doubles as the request's trace id.
	reqID := r.Header.Get("X-Request-Id")
	if reqID == "" {
		reqID = fmt.Sprintf("req-%06d", s.nextReqID.Add(1))
	}
	w.Header().Set("X-Request-Id", reqID)
	start := time.Now()
	s.requests.Inc()
	s.inflight.Add(1)
	status := http.StatusOK
	defer func() {
		s.inflight.Add(-1)
		dur := time.Since(start)
		s.reqSeconds.Add(dur.Seconds())
		log.Printf("mcheckd: id=%s method=%s path=%s status=%d dur=%s", reqID, r.Method, r.URL.Path, status, dur.Round(time.Microsecond))
	}()

	var req checkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status = http.StatusBadRequest
		s.fail(w, status, "bad request body: %v", err)
		return
	}
	if len(req.Files) == 0 {
		status = http.StatusBadRequest
		s.fail(w, status, "no files")
		return
	}
	triageMode, ok := req.triageMode()
	if !ok {
		status = http.StatusBadRequest
		s.fail(w, status, "triage_mode %q: want \"slice\" or \"sym\"", req.TriageMode)
		return
	}
	roots := req.Roots
	if len(roots) == 0 {
		for name := range req.Files {
			if strings.HasSuffix(name, ".c") {
				roots = append(roots, name)
			}
		}
		sort.Strings(roots)
	}
	if len(roots) == 0 {
		status = http.StatusBadRequest
		s.fail(w, status, "no roots (no *.c files)")
		return
	}

	// The program cache serves identical source trees without running
	// the frontend: a hit returns the already-parsed (immutable)
	// program plus its fingerprints, so the warm path goes straight to
	// the scheduler. Concurrent misses for one tree parse once.
	srcHash := sched.SourceHash(req.Files, roots)
	cp, warmProg, err := s.progCache.Load(srcHash, func() (*core.Program, error) {
		return core.Load("mcheckd", cpp.Layered(cpp.MapSource(req.Files), flash.HeaderSource()), roots)
	})
	if err != nil {
		status = http.StatusBadRequest
		s.fail(w, status, "load: %v", err)
		return
	}
	if warmProg {
		s.pcHits.Inc()
	} else {
		s.pcMisses.Inc()
	}
	prog := cp.Prog
	resp := checkResponse{Reports: []reportJSON{}}
	for _, e := range prog.ParseErrors {
		resp.ParseErrors = append(resp.ParseErrors, e.Error())
	}
	if len(resp.ParseErrors) > 0 {
		status = http.StatusUnprocessableEntity
		writeJSON(w, status, resp)
		return
	}

	// Assemble jobs exactly like cmd/mcheck: ad-hoc checkers first
	// (sorted by name — the request carries them in a map), then the
	// built-in suite. smByName keeps each SM job's machine for triage.
	spec := sched.ConventionSpec(prog)
	specOpt := sched.SpecHash(spec)
	var jobs []sched.Job
	smByName := map[string]*engine.SM{}
	smVersions := map[string]string{}
	adhoc := make([]string, 0, len(req.Checkers))
	for name := range req.Checkers {
		adhoc = append(adhoc, name)
	}
	sort.Strings(adhoc)
	for _, name := range adhoc {
		src := req.Checkers[name]
		mp, err := prog.CompileChecker(src)
		if err != nil {
			status = http.StatusBadRequest
			s.fail(w, status, "checker %s: %v", name, err)
			return
		}
		srcHash := sha256.Sum256([]byte(src))
		version := "adhoc-" + hex.EncodeToString(srcHash[:8])
		jobs = append(jobs, sched.Job{Name: mp.Name, Version: version,
			Options: specOpt, SM: mp.SM, AdhocSrc: src})
		smByName[mp.SM.Name] = mp.SM
		smVersions[mp.SM.Name] = version
	}
	if req.Flash == nil || *req.Flash {
		jobs = append(jobs, sched.FlashJobs(spec)...)
		// Reports carry the SM's own name, which can differ from the
		// registry name (buffer_race runs the wait_for_db machine), so
		// the triage map keys on sm.Name.
		for _, chk := range checkers.All() {
			if prov, ok := chk.(checkers.SMProvider); ok {
				sm, _ := prov.BuildSM(spec)
				smByName[sm.Name] = sm
				smVersions[sm.Name] = chk.Version()
			}
		}
	}
	if len(jobs) == 0 {
		status = http.StatusBadRequest
		s.fail(w, status, "nothing to run: flash disabled and no ad-hoc checkers")
		return
	}

	// Single-flight: concurrent requests for the same program, job
	// list, and triage mode share one computation. The key is the
	// program fingerprint plus everything that shapes the response.
	fl, leader := s.joinFlight(flightKey(cp.ProgramFP, jobs, triageMode))
	if !leader {
		// Counted at join time: this request will reuse the leader's
		// work whether or not it has finished yet.
		s.sfShared.Inc()
		<-fl.done
		log.Printf("mcheckd: id=%s singleflight=shared", reqID)
		if fl.err != "" {
			status = fl.code
			s.errored.Inc()
			http.Error(w, fl.err, fl.code)
			return
		}
		// The follower did no work of its own; its trace is the
		// leader's, addressed by the leader's request id.
		if fl.traceID != "" {
			w.Header().Set("X-Trace-Id", fl.traceID)
		}
		status = fl.code
		writeJSON(w, fl.code, fl.resp)
		return
	}

	if s.testLeaderHook != nil {
		s.testLeaderHook()
	}

	// Every leader request runs under its own tracer: the leader is
	// process 1 in the merged trace, workers claim higher pids as the
	// dispatcher folds their spans in (see Dispatcher.mergeWorkerSpans).
	tracer := obs.NewTracer()
	tracer.SetProcess(1, "mcheckd")
	creq := sched.Request{Prog: prog, Spec: spec, Jobs: jobs,
		Fingerprints: cp.Fingerprints, ProgramFP: cp.ProgramFP,
		Tracer: tracer, TraceID: reqID}
	// With a fleet configured, publish the source bundle so stateless
	// workers can parse this exact tree, then let the scheduler
	// dispatch cache-missed tasks remotely. A failed publish just runs
	// the request locally — never worse than no fleet.
	if s.fleet != nil {
		if err := sched.PutBundle(s.store, srcHash, req.Files, roots, spec); err != nil {
			log.Printf("mcheckd: id=%s bundle: %v (running locally)", reqID, err)
		} else {
			creq.SrcHash = srcHash
		}
	}
	res, err := s.analyzer.Check(creq)
	if err != nil {
		status = http.StatusInternalServerError
		fl.code, fl.err = status, fmt.Sprintf("check: %v", err)
		s.finishFlight(fl)
		s.fail(w, status, "check: %v", err)
		return
	}
	// Leader-only: followers reuse the result, so the underlying work
	// is counted once.
	s.tasks.Add(float64(res.Stats.Tasks))
	s.taskSeconds.Add(res.Stats.TaskTime.Seconds())
	s.hits.Add(float64(res.Stats.CacheHits))
	s.misses.Add(float64(res.Stats.CacheMisses))
	s.queueMax.SetMax(float64(res.Stats.MaxQueueDepth))

	// Ledger: one entry per leader run (followers reuse the leader's
	// work, so one computation is one entry). Failure to append is
	// logged, never fatal — the ledger is observability, not output.
	entry := sched.NewRunEntry(&creq, res, s.coverage)
	if err := sched.AppendRun(s.store, entry); err != nil {
		log.Printf("mcheckd: id=%s ledger: %v", reqID, err)
		entry.ID = ""
	}

	resp.Reports = s.rankReports(prog, cp.ProgramFP, res.Reports, smByName, smVersions, triageMode)
	resp.Stats = statsJSON{
		Functions:     res.Stats.Functions,
		Tasks:         res.Stats.Tasks,
		MaxQueueDepth: res.Stats.MaxQueueDepth,
		CacheHits:     res.Stats.CacheHits,
		CacheMisses:   res.Stats.CacheMisses,
		Reanalyzed:    res.Stats.Reanalyzed,
		GlobalReruns:  res.Stats.GlobalReruns,
		ElapsedMS:     float64(res.Stats.Elapsed) / float64(time.Millisecond),
		TaskMS:        float64(res.Stats.TaskTime) / float64(time.Millisecond),
		QueueWaitMS:   float64(res.Stats.QueueWait) / float64(time.Millisecond),
		Decisions:     res.Stats.Decisions,
		RunID:         entry.ID,
	}
	s.storeTrace(reqID, tracer.Events())
	w.Header().Set("X-Trace-Id", reqID)
	fl.code, fl.resp, fl.traceID = http.StatusOK, resp, reqID
	s.finishFlight(fl)
	writeJSON(w, http.StatusOK, resp)
}

// storeTrace retains the merged trace of one completed request for
// /debug/trace/<id>, evicting the oldest beyond traceRingCap.
func (s *server) storeTrace(id string, events []obs.Event) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if _, ok := s.traces[id]; !ok {
		s.traceOrder = append(s.traceOrder, id)
	}
	s.traces[id] = events
	for len(s.traceOrder) > traceRingCap {
		delete(s.traces, s.traceOrder[0])
		s.traceOrder = s.traceOrder[1:]
	}
}

// handleTrace serves one request's merged Chrome trace_event file:
// leader dispatch spans plus the execution spans of every worker that
// ran one of its tasks, aligned onto the leader's clock. Open it in
// chrome://tracing or Perfetto.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	s.traceMu.Lock()
	events, ok := s.traces[id]
	s.traceMu.Unlock()
	if id == "" || !ok {
		http.Error(w, "unknown trace id", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteTraceJSON(w, events); err != nil {
		log.Printf("mcheckd: /debug/trace/%s: %v", id, err)
	}
}

// fleetDebugResponse is the /debug/fleet body: live dispatcher state
// plus the tail of the task flight recorder.
type fleetDebugResponse struct {
	Fleet        bool                 `json:"fleet"`
	Workers      []fleet.WorkerStatus `json:"workers,omitempty"`
	FlightTotal  uint64               `json:"flight_total"`
	FlightEvents []obs.FlightEvent    `json:"flight_events"`
}

// handleFleet reports what the dispatcher is doing right now and what
// it recently did: per-worker queue depth, inflight count and health,
// and the flight recorder's task lifecycle tail (dispatched, stolen,
// retried, rejected, completed, fell-back, worker-down/up). With
// ?trace=<id> the flight tail is filtered to one request's events
// (FlightTotal stays the ring-wide count).
func (s *server) handleFleet(w http.ResponseWriter, r *http.Request) {
	resp := fleetDebugResponse{
		FlightTotal:  fleet.FlightTotal(),
		FlightEvents: fleet.FlightEvents(),
	}
	if want := r.URL.Query().Get("trace"); want != "" {
		kept := resp.FlightEvents[:0]
		for _, e := range resp.FlightEvents {
			if e.Trace == want {
				kept = append(kept, e)
			}
		}
		resp.FlightEvents = kept
	}
	if resp.FlightEvents == nil {
		resp.FlightEvents = []obs.FlightEvent{}
	}
	if s.fleet != nil {
		resp.Fleet = true
		resp.Workers = s.fleet.Status()
	}
	writeJSON(w, http.StatusOK, resp)
}

// flightKey content-addresses one /check computation. The program
// fingerprint comes from the program cache, so joining a flight never
// re-walks the AST.
func flightKey(progFP string, jobs []sched.Job, mode lint.TriageMode) string {
	h := sha256.New()
	h.Write([]byte(progFP))
	for _, j := range jobs {
		fmt.Fprintf(h, "|%s|%s|%s", j.Name, j.Version, j.Options)
	}
	fmt.Fprintf(h, "|triage=%s", mode)
	return hex.EncodeToString(h.Sum(nil))
}

// joinFlight returns the flight for key, reporting whether the caller
// is the leader (and must compute and finish it).
func (s *server) joinFlight(key string) (*flight, bool) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if fl, ok := s.flights[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl
	return fl, true
}

// finishFlight publishes the leader's outcome and retires the key so
// later identical requests compute fresh (their inputs may have been
// GC'd meanwhile).
func (s *server) finishFlight(fl *flight) {
	s.flightMu.Lock()
	for k, v := range s.flights {
		if v == fl {
			delete(s.flights, k)
			break
		}
	}
	s.flightMu.Unlock()
	close(fl.done)
}

// rankReports orders the combined report stream for the response:
// with triage, each SM report is replayed over feasible paths (the
// verdicts served from the depot when warm) and certain reports rank
// above demoted ones (likely-fp, then infeasible); within a rank,
// position order. Without triage every report keeps the CLI's
// position order and carries no confidence.
func (s *server) rankReports(prog *core.Program, progFP string, reports []engine.Report, smByName map[string]*engine.SM, smVersions map[string]string, mode lint.TriageMode) []reportJSON {
	var ranked []lint.RankedReport
	if mode != "" {
		ranked, _ = s.analyzer.TriageReports(sched.TriageRequest{Prog: prog,
			ProgramFP: progFP, SMs: smByName, Versions: smVersions,
			Reports: reports, Options: lint.TriageOptions{Mode: mode}})
		lint.SortRanked(ranked)
	} else {
		ranked = make([]lint.RankedReport, 0, len(reports))
		for _, r := range reports {
			ranked = append(ranked, lint.RankedReport{Report: r})
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			a, b := ranked[i], ranked[j]
			if a.Pos.File != b.Pos.File {
				return a.Pos.File < b.Pos.File
			}
			return a.Pos.Line < b.Pos.Line
		})
	}

	out := make([]reportJSON, 0, len(ranked))
	for _, r := range ranked {
		rj := reportJSON{
			Checker:    r.SM,
			Rule:       r.Rule,
			Fn:         r.Fn,
			File:       r.Pos.File,
			Line:       r.Pos.Line,
			Col:        r.Pos.Col,
			Msg:        r.Msg,
			Confidence: string(r.Confidence),
			Reason:     r.Reason,
		}
		for _, st := range r.Trace {
			rj.Trace = append(rj.Trace, traceStepJSON{
				File: st.Pos.File, Line: st.Pos.Line, Col: st.Pos.Col,
				Rule: st.Rule, From: st.From, To: st.To,
				Event: st.Event, Bindings: st.Bindings,
			})
		}
		out = append(out, rj)
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// Per-shard occupancy is sampled at scrape time; the shard set is
	// fixed for the depot's lifetime, so samples never go stale.
	for i, ss := range s.store.Stats().Shards {
		s.shardBytes.With(fmt.Sprint(i)).Set(float64(ss.Bytes))
	}
	s.reg.WritePrometheus(w)
	if s.fleet == nil {
		// Process-global metrics (engine, sched, depot) follow the
		// per-server families; the name spaces are disjoint.
		obs.Default.WritePrometheus(w)
		return
	}
	// Metrics federation: scrape every configured worker on demand and
	// re-export its fleet_worker_* families with a worker label, so one
	// scrape of the daemon sees the whole fleet. Families the
	// federation re-emits are excluded from this process's own
	// exposition — the fleet_worker_* namespace belongs to worker
	// processes, and a family may not be declared twice.
	scrapes, errs := s.fleet.ScrapeWorkers(r.Context())
	for addr, err := range errs {
		log.Printf("mcheckd: /metrics scrape %s: %v", addr, err)
	}
	keep := func(name string) bool { return strings.HasPrefix(name, "fleet_worker_") }
	fed := obs.FederatedNames(scrapes, keep)
	obs.Default.WritePrometheusFiltered(w, func(name string) bool { return !fed[name] })
	if err := obs.WriteFederated(w, scrapes, "worker", keep); err != nil {
		log.Printf("mcheckd: /metrics federate: %v", err)
	}
}

// handleCoverage serves the accumulated coverage/v1 artifact: every
// rule, state, pattern alternative and branch refinement each checker
// has fired across all /check requests this process has served (warm
// replays included — coverage rides in the depot artifact).
func (s *server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.coverage.Snapshot().WriteJSON(w); err != nil {
		log.Printf("mcheckd: /debug/coverage: %v", err)
	}
}

// handleTimings serves the live wall-time attribution: per-checker
// totals and quantiles, per-rule breakdowns, and the slowest function
// each checker saw. Warm cache hits contribute no time, so a fully
// cached process reports zeros here while /debug/coverage stays full.
func (s *server) handleTimings(w http.ResponseWriter, r *http.Request) {
	timings := s.coverage.Timings()
	if timings == nil {
		timings = []cover.Timing{}
	}
	writeJSON(w, http.StatusOK, timings)
}

// healthResponse is the /healthz readiness report: depot reachability
// plus per-worker fleet liveness, so a load balancer can drain a
// daemon whose cache volume or worker fleet is gone.
type healthResponse struct {
	Status  string               `json:"status"` // "ok" or "degraded"
	Depot   string               `json:"depot"`  // "ok" or the ping error
	Workers []fleet.WorkerStatus `json:"workers,omitempty"`
}

// handleHealthz reports readiness, not just liveness: 200 only while
// the depot is reachable and, with a fleet configured, at least one
// worker is live (a fleet daemon with zero workers still answers
// correctly via local fallback, but it is the worst-provisioned
// instance in the pool — the balancer should prefer its peers).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok", Depot: "ok"}
	code := http.StatusOK
	if err := s.store.Ping(); err != nil {
		resp.Status, resp.Depot = "degraded", err.Error()
		code = http.StatusServiceUnavailable
	}
	if s.fleet != nil {
		resp.Workers = s.fleet.Status()
		up := 0
		for _, ws := range resp.Workers {
			if ws.Up {
				up++
			}
		}
		if up == 0 {
			resp.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, resp)
}
