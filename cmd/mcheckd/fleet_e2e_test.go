package main

// End-to-end fleet coverage: a two-worker fleet over a shared depot
// must produce byte-identical /check responses to a plain local
// server, cold and warm — and every failure mode (worker crash
// mid-run, corrupt artifacts, deadline expiry, all workers down)
// must degrade to local execution with the identical bytes.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashmc/internal/depot"
	"flashmc/internal/flashgen"
	"flashmc/internal/fleet"
	"flashmc/internal/obs"
	"flashmc/internal/sched"
)

// workerMux is cmd/mcheckworker's HTTP surface, rebuilt for tests
// (main packages cannot import each other): the executor behind
// POST /task plus a /healthz the dispatcher's prober can hit.
func workerMux(store *depot.Depot) *http.ServeMux {
	exec := sched.NewExecutor(store)
	mux := http.NewServeMux()
	mux.Handle("/task", fleet.TaskHandler(exec.Execute))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// flashgenBody builds a /check body from a generated protocol —
// enough functions and handlers to exercise every task kind.
func flashgenBody(t *testing.T) string {
	t.Helper()
	gen := flashgen.Generate(flashgen.Options{Seed: 1})
	p := gen.Protocol("bitvector")
	if p == nil {
		t.Fatal("bitvector protocol not generated")
	}
	raw, err := json.Marshal(map[string]any{"files": p.Files})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// checkReports posts body to ts and returns the raw reports section —
// the bytes fleet and local runs must agree on (stats legitimately
// differ).
func checkReports(t *testing.T, ts *httptest.Server, body string) []byte {
	t.Helper()
	resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /check: %s\n%s", resp.Status, raw)
	}
	var parsed struct {
		Reports json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("bad response: %v", err)
	}
	return parsed.Reports
}

// localReference runs body through a plain (fleet-less) server and
// returns its reports.
func localReference(t *testing.T, body string) []byte {
	t.Helper()
	store, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, 4))
	defer ts.Close()
	return checkReports(t, ts, body)
}

// fleetServer assembles a fleet-backed mcheckd over its own depot
// with the given dispatcher.
func fleetServer(t *testing.T, store *depot.Depot, disp *fleet.Dispatcher) *httptest.Server {
	t.Helper()
	srv := newServer(store, 2)
	srv.setFleet(disp)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); disp.Close() })
	return ts
}

func counter(name string) float64 { return obs.Default.Snapshot()[name] }

// TestFleetByteIdentical is the acceptance bar: a 2-worker fleet over
// a shared depot answers /check byte-identically to a local -j run,
// cold and warm, with the work actually dispatched remotely.
func TestFleetByteIdentical(t *testing.T) {
	body := flashgenBody(t)
	want := localReference(t, body)

	// Each worker opens its own handle on the shared directory, as
	// separate processes would.
	sharedDir := t.TempDir()
	wstore1, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	w1 := httptest.NewServer(workerMux(wstore1))
	defer w1.Close()
	wstore2, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	w2 := httptest.NewServer(workerMux(wstore2))
	defer w2.Close()

	dstore, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	disp := fleet.New([]string{w1.URL, w2.URL}, fleet.Options{ProbeInterval: time.Hour})
	ts := fleetServer(t, dstore, disp)

	dispatchedBefore := counter("fleet_tasks_dispatched_total")
	fallbackBefore := counter("fleet_tasks_fallback_total")
	cold := checkReports(t, ts, body)
	if !bytes.Equal(want, cold) {
		t.Fatalf("cold fleet reports differ from local:\nlocal: %s\nfleet: %s", want, cold)
	}
	if d := counter("fleet_tasks_dispatched_total") - dispatchedBefore; d == 0 {
		t.Fatal("nothing was dispatched to the fleet")
	}
	if d := counter("fleet_tasks_fallback_total") - fallbackBefore; d != 0 {
		t.Fatalf("%v tasks fell back locally on a healthy fleet", d)
	}

	warm := checkReports(t, ts, body)
	if !bytes.Equal(want, warm) {
		t.Fatal("warm fleet reports differ from local")
	}
}

// TestFleetWorkerDiesMidRun: one worker starts dropping connections
// partway through the request; retries and liveness tracking must
// finish the run on the survivor, byte-identically.
func TestFleetWorkerDiesMidRun(t *testing.T) {
	body := flashgenBody(t)
	want := localReference(t, body)

	sharedDir := t.TempDir()
	wstore1, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	var served int
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/task" {
			served++
			if served > 3 {
				// Crash mid-task: drop the connection without answering.
				if hj, ok := w.(http.Hijacker); ok {
					conn, _, _ := hj.Hijack()
					conn.Close()
					return
				}
			}
		}
		workerMux(wstore1).ServeHTTP(w, r)
	}))
	defer dying.Close()
	wstore2, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	w2 := httptest.NewServer(workerMux(wstore2))
	defer w2.Close()

	dstore, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	disp := fleet.New([]string{dying.URL, w2.URL}, fleet.Options{
		Backoff: time.Millisecond, ProbeInterval: time.Hour,
	})
	ts := fleetServer(t, dstore, disp)

	got := checkReports(t, ts, body)
	if !bytes.Equal(want, got) {
		t.Fatal("reports differ after a worker died mid-run")
	}
	if served <= 3 {
		t.Fatalf("dying worker served %d tasks; it never got far enough to die mid-run", served)
	}
}

// TestFleetCorruptWorkerFallsBack: a worker answering under the wrong
// output key is rejected (never cached, never trusted) and every such
// task re-runs locally — with identical final bytes.
func TestFleetCorruptWorkerFallsBack(t *testing.T) {
	body := `{"files": {"proto.c": ` + mustQuote(fixture) + `}}`
	want := localReference(t, body)

	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/task" {
			io.WriteString(w, "ok\n")
			return
		}
		json.NewEncoder(w).Encode(fleet.Result{
			ID: "0000000000000000", Artifact: json.RawMessage(`{"reports":[]}`),
		})
	}))
	defer liar.Close()

	store, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disp := fleet.New([]string{liar.URL}, fleet.Options{ProbeInterval: time.Hour})
	ts := fleetServer(t, store, disp)

	badBefore := counter("fleet_tasks_bad_artifact_total")
	fallbackBefore := counter("fleet_tasks_fallback_total")
	got := checkReports(t, ts, body)
	if !bytes.Equal(want, got) {
		t.Fatalf("reports differ behind a lying worker:\nlocal: %s\nfleet: %s", want, got)
	}
	if d := counter("fleet_tasks_bad_artifact_total") - badBefore; d == 0 {
		t.Fatal("no reply was flagged as a bad artifact")
	}
	if d := counter("fleet_tasks_fallback_total") - fallbackBefore; d == 0 {
		t.Fatal("no task fell back to local execution")
	}
}

// TestFleetDeadlineFallsBack: a worker slower than the per-task
// deadline never wedges the request — expired attempts fall back
// locally and the response is identical.
func TestFleetDeadlineFallsBack(t *testing.T) {
	body := `{"files": {"proto.c": ` + mustQuote(fixture) + `}}`
	want := localReference(t, body)

	glacial := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/task" {
			io.WriteString(w, "ok\n")
			return
		}
		time.Sleep(250 * time.Millisecond)
		http.Error(w, "too late anyway", http.StatusInternalServerError)
	}))
	defer glacial.Close()

	store, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disp := fleet.New([]string{glacial.URL}, fleet.Options{
		TaskTimeout: 20 * time.Millisecond, MaxAttempts: 1,
		ProbeInterval: time.Hour, FailThreshold: 1 << 30,
	})
	ts := fleetServer(t, store, disp)

	fallbackBefore := counter("fleet_tasks_fallback_total")
	got := checkReports(t, ts, body)
	if !bytes.Equal(want, got) {
		t.Fatal("reports differ behind a glacial worker")
	}
	if d := counter("fleet_tasks_fallback_total") - fallbackBefore; d == 0 {
		t.Fatal("no task fell back to local execution")
	}
}

// TestFleetAllWorkersDown: a fleet of corpses serves correct answers
// via local fallback and reports itself degraded on /healthz.
func TestFleetAllWorkersDown(t *testing.T) {
	body := `{"files": {"proto.c": ` + mustQuote(fixture) + `}}`
	want := localReference(t, body)

	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead2 := httptest.NewServer(http.NotFoundHandler())
	addr1, addr2 := dead1.URL, dead2.URL
	dead1.Close()
	dead2.Close()

	store, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disp := fleet.New([]string{addr1, addr2}, fleet.Options{
		Backoff: time.Millisecond, FailThreshold: 1, MaxAttempts: 2,
		ProbeInterval: time.Hour,
	})
	ts := fleetServer(t, store, disp)

	got := checkReports(t, ts, body)
	if !bytes.Equal(want, got) {
		t.Fatal("reports differ with every worker down")
	}

	// The request's failures marked both workers down; readiness must
	// now steer the balancer to better-provisioned peers.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead fleet: %s\n%s", resp.Status, raw)
	}
	if !strings.Contains(string(raw), `"degraded"`) {
		t.Fatalf("healthz body lacks degraded status: %s", raw)
	}
}
