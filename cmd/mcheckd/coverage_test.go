package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flashmc/internal/cover"
	"flashmc/internal/depot"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, raw)
	}
	return raw
}

// /debug/coverage accumulates a valid coverage/v1 artifact across
// /check requests, and /debug/timings attributes the live work.
func TestDebugCoverageAndTimings(t *testing.T) {
	store, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, 2))
	defer ts.Close()

	// Before any request: an empty but well-formed artifact.
	raw := get(t, ts.URL+"/debug/coverage")
	if n, err := cover.Validate(strings.NewReader(string(raw))); err != nil {
		t.Fatalf("empty coverage invalid: %v\n%s", err, raw)
	} else if n != 0 {
		t.Fatalf("fresh server already has %d checkers", n)
	}

	body := `{"files": {"proto.c": ` + mustQuote(fixture) + `}}`
	postCheck(t, ts, body)

	raw = get(t, ts.URL+"/debug/coverage")
	n, err := cover.Validate(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("coverage after /check invalid: %v\n%s", err, raw)
	}
	if n == 0 {
		t.Fatalf("no coverage recorded after /check:\n%s", raw)
	}
	var art cover.Artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	br := art.Checkers["buffer_race"]
	if br == nil || len(br.Rules) == 0 {
		t.Fatalf("buffer_race fired no rules on the race fixture:\n%s", raw)
	}

	raw = get(t, ts.URL+"/debug/timings")
	var timings []cover.Timing
	if err := json.Unmarshal(raw, &timings); err != nil {
		t.Fatalf("bad timings JSON: %v\n%s", err, raw)
	}
	if len(timings) == 0 {
		t.Fatalf("no timings after a cold /check:\n%s", raw)
	}
	anyTime := false
	for _, tm := range timings {
		if tm.Seconds > 0 {
			anyTime = true
		}
	}
	if !anyTime {
		t.Errorf("cold run attributed zero wall time everywhere:\n%s", raw)
	}

	// A warm repeat replays coverage from the depot: counts double,
	// artifact stays valid.
	postCheck(t, ts, body)
	raw = get(t, ts.URL+"/debug/coverage")
	if _, err := cover.Validate(strings.NewReader(string(raw))); err != nil {
		t.Fatalf("coverage after warm /check invalid: %v\n%s", err, raw)
	}
	var art2 cover.Artifact
	if err := json.Unmarshal(raw, &art2); err != nil {
		t.Fatal(err)
	}
	br2 := art2.Checkers["buffer_race"]
	if br2 == nil {
		t.Fatal("buffer_race coverage vanished after warm run")
	}
	for rule, count := range br.Rules {
		if br2.Rules[rule] != 2*count {
			t.Errorf("rule %s: warm replay count %d, want %d (doubled)", rule, br2.Rules[rule], 2*count)
		}
	}
}
