package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"flashmc/internal/depot"
)

// symFixture pairs a genuine race (one certain report) with a
// buffer leak that fires only on a value-correlated impossible path:
// after t0 |= 2 the else arm of `if (t0 & 2)` cannot execute, which
// only the symbolic rung can prove.
const symFixture = `#include "flash-includes.h"
void h_local_get(void) {
    unsigned a;
    unsigned b;
    MISCBUS_READ_DB(a, b);
    WAIT_FOR_DB_FULL(a);
    MISCBUS_READ_DB(a, b);
}
void h_masked_put(void) {
    unsigned t0;
    t0 = t0 | 2;
    if (t0 & 2) {
        DEC_DB_REF(0);
    }
}
`

// metricValue extracts one counter's value from a Prometheus text
// dump (0 when absent).
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	return 0
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestServerSymTriageWarmPath: /check with triage_mode "sym" ranks the
// provably-impossible leak infeasible below the certain race, and the
// second identical request serves its verdicts from the depot —
// counter-gated via sched_triage_cache_{hits,misses}_total — with a
// byte-identical report stream.
func TestServerSymTriageWarmPath(t *testing.T) {
	store, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, 2))
	defer ts.Close()

	body := `{"files": {"proto.c": ` + mustQuote(symFixture) + `}, "triage_mode": "sym"}`

	before := scrapeMetrics(t, ts)
	cold, coldRaw := postCheck(t, ts, body)

	var leak *reportJSON
	for i, r := range cold.Reports {
		if r.Checker == "buffer_mgmt" && r.Fn == "h_masked_put" {
			leak = &cold.Reports[i]
		}
	}
	if leak == nil {
		t.Fatalf("no buffer_mgmt report for h_masked_put:\n%s", coldRaw)
	}
	if leak.Confidence != "infeasible" {
		t.Fatalf("impossible-path leak ranked %q, want infeasible: %+v", leak.Confidence, *leak)
	}
	// Ranked stream: every certain report sorts before the demoted leak.
	seenLeak := false
	for _, r := range cold.Reports {
		if r.Checker == "buffer_mgmt" && r.Fn == "h_masked_put" {
			seenLeak = true
		} else if r.Confidence == "certain" && seenLeak {
			t.Fatalf("certain report ranked below the infeasible leak:\n%s", coldRaw)
		}
	}

	mid := scrapeMetrics(t, ts)
	coldMisses := metricValue(t, mid, "sched_triage_cache_misses_total") -
		metricValue(t, before, "sched_triage_cache_misses_total")
	if coldMisses == 0 {
		t.Fatal("cold request recomputed no triage verdict groups")
	}

	warm, warmRaw := postCheck(t, ts, body)
	coldReports, _ := json.Marshal(cold.Reports)
	warmReports, _ := json.Marshal(warm.Reports)
	if !bytes.Equal(coldReports, warmReports) {
		t.Fatalf("warm reports differ from cold:\ncold %s\nwarm %s", coldRaw, warmRaw)
	}

	after := scrapeMetrics(t, ts)
	if d := metricValue(t, after, "sched_triage_cache_misses_total") -
		metricValue(t, mid, "sched_triage_cache_misses_total"); d != 0 {
		t.Errorf("warm request recomputed %v triage verdict groups; want 0", d)
	}
	if d := metricValue(t, after, "sched_triage_cache_hits_total") -
		metricValue(t, mid, "sched_triage_cache_hits_total"); d != coldMisses {
		t.Errorf("warm request served %v verdict groups from the depot, want %v", d, coldMisses)
	}
}

// TestServerBadTriageMode: an unknown triage_mode is a client error,
// not a silent fallback.
func TestServerBadTriageMode(t *testing.T) {
	store, err := depot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, 2))
	defer ts.Close()

	body := `{"files": {"proto.c": ` + mustQuote(symFixture) + `}, "triage_mode": "psychic"}`
	resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("triage_mode=psychic: status %d, want 400", resp.StatusCode)
	}
}
