package main

// End-to-end distributed tracing and fleet introspection: one /check
// over a two-worker fleet must yield a single merged Chrome trace with
// leader dispatch spans and worker execution spans for the same task
// ids; /metrics must federate the workers' families; /debug/fleet must
// notice a killed worker within one probe interval.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashmc/internal/depot"
	"flashmc/internal/fleet"
	"flashmc/internal/obs"
	"flashmc/internal/sched"
)

// tracingWorkerMux is workerMux plus the /metrics endpoint the
// federation scraper hits.
func tracingWorkerMux(store *depot.Depot) *http.ServeMux {
	exec := sched.NewExecutor(store)
	mux := http.NewServeMux()
	mux.Handle("/task", fleet.TaskHandler(exec.Execute))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.WritePrometheus(w)
	})
	return mux
}

// traceEventFile mirrors the Chrome trace_event object form for
// decoding /debug/trace output.
type traceEventFile struct {
	TraceEvents []obs.Event `json:"traceEvents"`
}

func TestFleetTraceMerged(t *testing.T) {
	body := flashgenBody(t)

	sharedDir := t.TempDir()
	wstore1, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	w1 := httptest.NewServer(tracingWorkerMux(wstore1))
	defer w1.Close()
	wstore2, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	w2 := httptest.NewServer(tracingWorkerMux(wstore2))
	defer w2.Close()

	dstore, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	disp := fleet.New([]string{w1.URL, w2.URL}, fleet.Options{ProbeInterval: time.Hour})
	ts := fleetServer(t, dstore, disp)

	// The caller's request id is reused and doubles as the trace id.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/check", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "req-trace-e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /check: %s\n%s", resp.Status, raw)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-trace-e2e" {
		t.Fatalf("X-Request-Id = %q, want the caller's id echoed", got)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID != "req-trace-e2e" {
		t.Fatalf("X-Trace-Id = %q, want req-trace-e2e", traceID)
	}

	tresp, err := http.Get(ts.URL + "/debug/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	traw, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace/%s: %s\n%s", traceID, tresp.Status, traw)
	}

	// The merged file must validate (monotone lanes, ≥1 span) and show
	// the leader plus both workers as distinct named processes.
	stats, err := obs.ValidateTraceStats(strings.NewReader(string(traw)))
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	var leader, workers int
	for _, p := range stats.Processes {
		switch {
		case p.PID == 1 && p.Name == "mcheckd":
			leader++
			if p.Spans == 0 {
				t.Fatal("leader process has no spans")
			}
		case strings.HasPrefix(p.Name, "mcheckworker"):
			if p.Spans > 0 {
				workers++
			}
		}
	}
	if leader != 1 {
		t.Fatalf("no mcheckd leader process in trace: %+v", stats.Processes)
	}
	if workers < 2 {
		t.Fatalf("trace shows %d workers with spans, want 2: %+v", workers, stats.Processes)
	}

	// Leader dispatch spans and worker execution spans must reference
	// the same scheduler task ids — that is what makes it one trace
	// rather than two stapled together.
	var file traceEventFile
	if err := json.Unmarshal(traw, &file); err != nil {
		t.Fatal(err)
	}
	dispatchTasks := map[string]bool{}
	workerTasks := map[string]bool{}
	for _, e := range file.TraceEvents {
		task, _ := e.Args["task"].(string)
		if task == "" {
			continue
		}
		if e.Cat == "fleet" && e.PID == 1 {
			dispatchTasks[task] = true
		}
		if e.PID > 1 && e.Ph == "X" {
			workerTasks[task] = true
		}
	}
	if len(dispatchTasks) == 0 {
		t.Fatal("no leader dispatch spans with a task arg")
	}
	if len(workerTasks) == 0 {
		t.Fatal("no worker execution spans with a task arg")
	}
	for task := range workerTasks {
		if !dispatchTasks[task] {
			t.Fatalf("worker span task %q has no matching dispatch span", task)
		}
	}

	// Unknown ids 404 instead of serving an empty trace.
	nf, err := http.Get(ts.URL + "/debug/trace/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nf.Body)
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/trace/no-such-id: %s, want 404", nf.Status)
	}

	// Federation: one scrape of the leader shows every worker's
	// fleet_worker_* families, labeled, in a parseable exposition.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fams, err := obs.ParsePrometheus(strings.NewReader(string(mraw)))
	if err != nil {
		t.Fatalf("federated /metrics does not parse: %v", err)
	}
	fam := fams["fleet_worker_tasks_total"]
	if fam == nil {
		t.Fatal("federated /metrics lacks fleet_worker_tasks_total")
	}
	seen := map[string]bool{}
	for _, s := range fam.Samples {
		seen[s.Labels["worker"]] = true
	}
	for _, addr := range []string{w1.URL, w2.URL} {
		if !seen[addr] {
			t.Fatalf("no federated sample for worker %s: %v", addr, seen)
		}
	}
	// Labeled (CounterVec) worker families federate too: the by-kind
	// counter must arrive with both its own kind label and the
	// injected worker label.
	byKind := fams["fleet_worker_tasks_by_kind_total"]
	if byKind == nil {
		t.Fatal("federated /metrics lacks fleet_worker_tasks_by_kind_total")
	}
	kinds := map[string]bool{}
	for _, s := range byKind.Samples {
		if s.Labels["worker"] == "" {
			t.Fatalf("by-kind sample lost its worker label: %+v", s)
		}
		kinds[s.Labels["kind"]] = true
	}
	if !kinds["sm"] {
		t.Fatalf("no kind=\"sm\" sample federated: %v", kinds)
	}
}

// TestDebugFleetSeesDeadWorker: killing a worker shows up in
// /debug/fleet within one probe interval, and the flight recorder has
// the request's task lifecycle on record.
func TestDebugFleetSeesDeadWorker(t *testing.T) {
	body := `{"files": {"proto.c": ` + mustQuote(fixture) + `}}`

	sharedDir := t.TempDir()
	wstore1, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	w1 := httptest.NewServer(workerMux(wstore1))
	defer w1.Close()
	wstore2, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	w2 := httptest.NewServer(workerMux(wstore2))

	dstore, err := depot.Open(sharedDir)
	if err != nil {
		t.Fatal(err)
	}
	disp := fleet.New([]string{w1.URL, w2.URL}, fleet.Options{
		ProbeInterval: 25 * time.Millisecond, Backoff: time.Millisecond,
	})
	ts := fleetServer(t, dstore, disp)

	checkReports(t, ts, body)

	getFleet := func() fleetDebugResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/fleet")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out fleetDebugResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	st := getFleet()
	if !st.Fleet || len(st.Workers) != 2 {
		t.Fatalf("/debug/fleet = %+v", st)
	}
	if st.FlightTotal == 0 || len(st.FlightEvents) == 0 {
		t.Fatal("flight recorder empty after a fleet check")
	}
	kinds := map[string]bool{}
	for _, e := range st.FlightEvents {
		kinds[e.Kind] = true
	}
	if !kinds["dispatched"] || !kinds["completed"] {
		t.Fatalf("flight recorder lacks dispatched/completed events: %v", kinds)
	}

	// Kill worker 2; the prober must flip it to down within a couple of
	// probe intervals.
	w2.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		down := false
		for _, ws := range getFleet().Workers {
			if ws.Addr == w2.URL && !ws.Up {
				down = true
			}
		}
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/debug/fleet never showed the killed worker down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, e := range getFleet().FlightEvents {
		if e.Kind == "worker-down" && e.Worker == w2.URL {
			return
		}
	}
	t.Fatal("no worker-down flight event for the killed worker")
}
