package main

// The run-ledger debug surface. The depot's runs/v1 ledger records
// one entry per leader /check computation; these endpoints make it
// queryable over HTTP:
//
//	GET /debug/runs              — run summaries, append order
//	GET /debug/runs/<id>         — one full ledger entry
//	GET /debug/runs/diff?a=&b=   — compare two entries
//
// mcheckclient -runs/-diff are thin clients of these routes; offline,
// mcheck -runs/-diff read the same ledger straight from the depot.

import (
	"net/http"
	"strings"

	"flashmc/internal/sched"
)

// runSummaryJSON is one line of the /debug/runs listing.
type runSummaryJSON struct {
	ID        string `json:"id"`
	Unix      int64  `json:"unix"`
	Reports   int    `json:"reports"`
	Tasks     int    `json:"tasks"`
	Hits      int    `json:"hits"`
	Misses    int    `json:"misses"`
	Decisions string `json:"decisions"`
	ElapsedUS int64  `json:"elapsed_us"`
}

type runsResponse struct {
	Runs []runSummaryJSON `json:"runs"`
}

func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/debug/runs"), "/")
	switch rest {
	case "":
		resp := runsResponse{Runs: []runSummaryJSON{}}
		for _, id := range sched.ListRuns(s.store) {
			e, ok := sched.GetRun(s.store, id)
			if !ok {
				continue // entry evicted; the index keeps the id
			}
			resp.Runs = append(resp.Runs, runSummaryJSON{
				ID: e.ID, Unix: e.Unix, Reports: len(e.Reports), Tasks: e.Tasks,
				Hits: e.Hits, Misses: e.Misses, Decisions: e.DecisionLine(),
				ElapsedUS: e.ElapsedUS,
			})
		}
		writeJSON(w, http.StatusOK, resp)

	case "diff":
		a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
		ea, okA := sched.GetRun(s.store, a)
		eb, okB := sched.GetRun(s.store, b)
		if a == "" || b == "" || !okA || !okB {
			http.Error(w, "diff wants ?a=<runid>&b=<runid> of known runs", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, sched.DiffRuns(ea, eb))

	default:
		e, ok := sched.GetRun(s.store, rest)
		if !ok {
			http.Error(w, "unknown run id", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, e)
	}
}
