// protostat prints Table 1-style protocol size statistics (LOC, path
// counts, average/max path length) either for C files given on the
// command line or, with -corpus, for the generated FLASH corpus.
//
// Usage:
//
//	protostat [-I dir]... file.c...
//	protostat -corpus [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/core"
	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
	"flashmc/internal/paths"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var includes stringList
	flag.Var(&includes, "I", "include search directory (repeatable)")
	corpus := flag.Bool("corpus", false, "measure the generated FLASH corpus")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	flag.Parse()

	fmt.Printf("%-12s %8s %8s %10s %10s\n", "unit", "LOC", "paths", "avg-path", "max-path")
	if *corpus {
		gen := flashgen.Generate(flashgen.Options{Seed: *seed})
		for _, p := range gen.Protocols {
			prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
			if err != nil {
				fail("%s: %v", p.Name, err)
			}
			printStats(p.Name, prog)
			ref := flash.Table1[p.Name]
			fmt.Printf("%-12s %8d %8d %10d %10d   (paper)\n", "", ref.LOC, ref.Paths, ref.AvgLen, ref.MaxLen)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "protostat: no input files (or use -corpus)")
		os.Exit(2)
	}
	prog, err := core.Load("cli", cpp.Layered(cpp.OSSource{}, flash.HeaderSource()), flag.Args(), includes...)
	if err != nil {
		fail("%v", err)
	}
	for _, e := range prog.ParseErrors {
		fmt.Fprintf(os.Stderr, "protostat: %v\n", e)
	}
	printStats("input", prog)
}

func printStats(name string, prog *core.Program) {
	var total, max int64
	var sumLen float64
	for _, g := range prog.Graphs {
		st := paths.Analyze(g)
		total += st.Count
		sumLen += st.AvgLen * float64(st.Count)
		if st.MaxLen > max {
			max = st.MaxLen
		}
	}
	avg := 0
	if total > 0 {
		avg = int(sumLen / float64(total))
	}
	fmt.Printf("%-12s %8d %8d %10d %10d\n", name, prog.SourceLOC, total, avg, max)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "protostat: "+format+"\n", args...)
	os.Exit(1)
}
