// paperbench regenerates every table of the paper's evaluation and
// prints paper-vs-measured rows, plus the static-vs-dynamic experiment
// motivating the work.
//
// Usage:
//
//	paperbench [-seed N] [-trials N] [-json]
//
// -json replaces the rendered tables with one machine-readable JSON
// object (for dashboards and CI trend tracking).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
	"flashmc/internal/paper"
)

func main() {
	seed := flag.Int64("seed", 1, "corpus seed")
	trials := flag.Int("trials", 120, "dynamic-testing trials per handler")
	jsonOut := flag.Bool("json", false, "emit results as one JSON object instead of rendered tables")
	flag.Parse()

	c, err := paper.LoadCorpus(flashgen.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		out := map[string]any{
			"seed":              *seed,
			"table1":            c.Table1(),
			"table2":            c.Table2(),
			"table3":            c.Table3(),
			"table4":            c.Table4(),
			"lanes":             c.Lanes(),
			"table5":            c.Table5(),
			"table6":            c.Table6(),
			"table7":            c.Table7(),
			"static_vs_dynamic": c.StaticVsDynamic(*trials, *seed),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("=== Table 1: protocol size (paper vs measured) ===")
	t1 := c.Table1()
	paperLOC, paperPaths, paperAvg, paperMax := flash.Counts{}, flash.Counts{}, flash.Counts{}, flash.Counts{}
	for p, row := range flash.Table1 {
		paperLOC[p], paperPaths[p], paperAvg[p], paperMax[p] = row.LOC, row.Paths, row.AvgLen, row.MaxLen
	}
	fmt.Print(paper.RenderCompare("LOC", paperLOC, paper.Row(t1.LOC)))
	fmt.Print(paper.RenderCompare("# of paths", paperPaths, paper.Row(t1.Paths)))
	fmt.Print(paper.RenderCompare("avg path length", paperAvg, paper.Row(t1.AvgLen)))
	fmt.Print(paper.RenderCompare("max path length", paperMax, paper.Row(t1.MaxLen)))

	fmt.Println("\n=== Table 2: buffer race checker ===")
	t2 := c.Table2()
	fmt.Print(paper.RenderCompare("errors", flash.Table2.Errors, t2.Errors))
	fmt.Print(paper.RenderCompare("false positives", flash.Table2.FalsePos, t2.FalsePos))
	fmt.Print(paper.RenderCompare("applied", flash.Table2.Applied, t2.Applied))

	fmt.Println("\n=== Table 3: message length checker ===")
	t3 := c.Table3()
	fmt.Print(paper.RenderCompare("errors", flash.Table3.Errors, t3.Errors))
	fmt.Print(paper.RenderCompare("false positives", flash.Table3.FalsePos, t3.FalsePos))
	fmt.Print(paper.RenderCompare("applied", flash.Table3.Applied, t3.Applied))

	fmt.Println("\n=== Table 4: buffer management checker ===")
	t4 := c.Table4()
	fmt.Print(paper.RenderCompare("errors", flash.Table4.Errors, t4.Errors))
	fmt.Print(paper.RenderCompare("minor", flash.Table4.Minor, t4.Minor))
	fmt.Print(paper.RenderCompare("useful annotations", flash.Table4.Useful, t4.Useful))
	fmt.Print(paper.RenderCompare("useless annotations", flash.Table4.Useless, t4.Useless))

	fmt.Println("\n=== §7: lane deadlock checker ===")
	lanes := c.Lanes()
	fmt.Print(paper.RenderCompare("errors", flash.LanesResults.Errors, lanes.Errors))
	fmt.Print(paper.RenderCompare("false positives", flash.LanesResults.FalsePos, lanes.FalsePos))

	fmt.Println("\n=== Table 5: execution restrictions ===")
	t5 := c.Table5()
	viol := paper.Row{}
	for p, sc := range t5.Scores {
		viol[p] = sc.Violations
	}
	fmt.Print(paper.RenderCompare("violations", flash.Table5.Violations, viol))
	fmt.Print(paper.RenderCompare("handlers", flash.Table5.Handlers, t5.Handlers))
	fmt.Print(paper.RenderCompare("vars", flash.Table5.Vars, t5.Vars))

	fmt.Println("\n=== Table 6: three less effective checks ===")
	t6 := c.Table6()
	fmt.Print(paper.RenderCompare("alloc false positives", flash.Table6.BufferAlloc.FalsePos, t6.BufferAlloc.FalsePos))
	fmt.Print(paper.RenderCompare("alloc applied", flash.Table6.BufferAlloc.Applied, t6.BufferAlloc.Applied))
	fmt.Print(paper.RenderCompare("directory errors", flash.Table6.Directory.Errors, t6.Directory.Errors))
	fmt.Print(paper.RenderCompare("directory false pos", flash.Table6.Directory.FalsePos, t6.Directory.FalsePos))
	fmt.Print(paper.RenderCompare("directory applied", flash.Table6.Directory.Applied, t6.Directory.Applied))
	fmt.Print(paper.RenderCompare("send-wait false pos", flash.Table6.SendWait.FalsePos, t6.SendWait.FalsePos))
	fmt.Print(paper.RenderCompare("send-wait applied", flash.Table6.SendWait.Applied, t6.SendWait.Applied))

	fmt.Println("\n=== Table 7: summary ===")
	fmt.Printf("%-24s %12s %12s %12s %12s %8s %10s\n",
		"checker", "LOC(paper)", "LOC(ours)", "err(paper)", "err(ours)", "fp(paper)", "fp(ours)")
	errT, fpT := 0, 0
	for i, row := range c.Table7() {
		want := flash.Table7[i]
		fmt.Printf("%-24s %12d %12d %12d %12d %8d %10d\n",
			row.Checker, want.LOC, row.LOC, want.Err, row.Err, want.FalsePos, row.FalsePos)
		errT += row.Err
		fpT += row.FalsePos
	}
	fmt.Printf("%-24s %12d %12s %12d %12d %8d %10d\n", "Total",
		flash.Table7Totals.LOC, "-", flash.Table7Totals.Err, errT, flash.Table7Totals.FalsePos, fpT)

	fmt.Println("\n=== §2/§11: static vs dynamic detection ===")
	fmt.Print(paper.RenderStaticVsDynamic(c.StaticVsDynamic(*trials, *seed)))
}
