// paperbench regenerates every table of the paper's evaluation and
// prints paper-vs-measured rows, plus the static-vs-dynamic experiment
// motivating the work.
//
// Usage:
//
//	paperbench [-seed N] [-trials N] [-json]
//	paperbench -bench out.json [-gate BENCH_PR4.json] [-coverage-out cov.json]
//	paperbench -append BENCH_PR9.json
//
// -json replaces the rendered tables with one machine-readable JSON
// object (for dashboards and CI trend tracking). The payload carries a
// "bench_schema" version and contains only deterministic quantities —
// two runs with the same seed are byte-identical, which CI asserts.
//
// The bench flags measure instead of reproduce: -bench times a full
// corpus coverage run (every checker over every protocol) and writes a
// versioned bench JSON with wall time, configs explored and rules
// fired; -gate compares that measurement against a committed baseline
// and fails if wall time or configs explored regressed more than 25%;
// -coverage-out writes the corpus coverage/v1 artifact (validated by
// obscheck -coverage); -coverage prints the checker × protocol matrix
// and any coverage-dead findings with the rendered tables; -append
// grows a committed trajectory file — a JSON array of timestamped
// bench measurements — so performance history accumulates across PRs
// instead of each baseline overwriting the last.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"flashmc/internal/flash"
	"flashmc/internal/flashgen"
	"flashmc/internal/obs"
	"flashmc/internal/paper"
)

// benchSchema versions every JSON payload paperbench writes.
const benchSchema = 1

// benchResult is the measured (non-deterministic) half: what the gate
// compares. Field names are the schema; changing them bumps benchSchema.
type benchResult struct {
	BenchSchema     int     `json:"bench_schema"`
	Seed            int64   `json:"seed"`
	Protocols       int     `json:"protocols"`
	Checkers        int     `json:"checkers"`
	WallSeconds     float64 `json:"wall_seconds"`
	ConfigsExplored float64 `json:"configs_explored"`
	RulesFired      float64 `json:"rules_fired"`
	// Fused is the fused-vs-sequential comparison: the product
	// automaton must reproduce the sequential suite byte-identically
	// while sweeping each node a fraction of the times. Omitted in
	// baselines that predate it (the gate ignores it). These fields
	// are additive, so bench_schema stays at 1.
	Fused           *paper.FusedComparison `json:"fused,omitempty"`
	FusedVisitRatio float64                `json:"fused_visit_ratio,omitempty"`
}

// trajectoryEntry is one row of a -append trajectory file: a bench
// measurement plus when it was taken.
type trajectoryEntry struct {
	benchResult
	Unix int64 `json:"unix"`
}

// renderJSON builds the deterministic -json payload: bench schema,
// every table, the coverage matrix and the coverage-dead cross-check.
// No timestamps and no wall times — byte-identical across runs for a
// given seed.
func renderJSON(c *paper.Corpus, m *paper.CoverageMatrix, seed int64, trials int) ([]byte, error) {
	var dead []string
	for _, d := range c.CoverageDead(m) {
		dead = append(dead, d.String())
	}
	out := map[string]any{
		"bench_schema":      benchSchema,
		"seed":              seed,
		"table1":            c.Table1(),
		"table2":            c.Table2(),
		"table3":            c.Table3(),
		"table4":            c.Table4(),
		"lanes":             c.Lanes(),
		"table5":            c.Table5(),
		"table6":            c.Table6(),
		"table7":            c.Table7(),
		"static_vs_dynamic": c.StaticVsDynamic(trials, seed),
		"coverage":          m.Merged,
		"coverage_dead":     dead,
	}
	return json.MarshalIndent(out, "", "  ")
}

// measure times one full corpus coverage run and attributes the engine
// work counters to it.
func measure(c *paper.Corpus, seed int64) (*paper.CoverageMatrix, benchResult) {
	before := obs.Default.Snapshot()
	t0 := time.Now()
	m := c.Coverage()
	wall := time.Since(t0).Seconds()
	after := obs.Default.Snapshot()
	return m, benchResult{
		BenchSchema:     benchSchema,
		Seed:            seed,
		Protocols:       len(m.Protocols),
		Checkers:        len(m.Checkers),
		WallSeconds:     wall,
		ConfigsExplored: after["engine_configs_explored_total"] - before["engine_configs_explored_total"],
		RulesFired:      after["engine_rules_fired_total"] - before["engine_rules_fired_total"],
	}
}

// gate compares a measurement against a committed baseline: wall time
// and configs explored may regress at most 25%. Returns the violations.
func gate(baseline, current benchResult) []string {
	var bad []string
	check := func(what string, base, cur float64) {
		if base > 0 && cur > base*1.25 {
			bad = append(bad, fmt.Sprintf("%s regressed: %.3f -> %.3f (+%.0f%%, limit 25%%)",
				what, base, cur, 100*(cur-base)/base))
		}
	}
	check("wall_seconds", baseline.WallSeconds, current.WallSeconds)
	check("configs_explored", baseline.ConfigsExplored, current.ConfigsExplored)
	if baseline.BenchSchema != current.BenchSchema {
		bad = append(bad, fmt.Sprintf("bench_schema changed: %d -> %d (regenerate the baseline)",
			baseline.BenchSchema, current.BenchSchema))
	}
	return bad
}

func main() {
	seed := flag.Int64("seed", 1, "corpus seed")
	trials := flag.Int("trials", 120, "dynamic-testing trials per handler")
	jsonOut := flag.Bool("json", false, "emit results as one deterministic JSON object instead of rendered tables")
	benchOut := flag.String("bench", "", "time a corpus coverage run and write the bench JSON to this path")
	gateFile := flag.String("gate", "", "compare the bench measurement against this committed baseline; exit nonzero on >25% regression")
	coverageOut := flag.String("coverage-out", "", "write the corpus coverage/v1 artifact to this path")
	showCoverage := flag.Bool("coverage", false, "print the checker x protocol coverage matrix and coverage-dead findings")
	appendFile := flag.String("append", "", "append this run's bench measurement to the trajectory JSON array at this path (created if missing)")
	flag.Parse()

	c, err := paper.LoadCorpus(flashgen.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}

	// One coverage run feeds every consumer that needs it.
	var matrix *paper.CoverageMatrix
	var bench benchResult
	if *jsonOut || *benchOut != "" || *gateFile != "" || *coverageOut != "" || *showCoverage || *appendFile != "" {
		matrix, bench = measure(c, *seed)
	}

	// Bench payloads additionally carry the fused-vs-sequential
	// comparison; any output mismatch is a hard failure, not a metric.
	if *benchOut != "" || *gateFile != "" || *appendFile != "" {
		fc, err := c.FusedVsSequential()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: fused: %v\n", err)
			os.Exit(1)
		}
		if !fc.Identical {
			for _, m := range fc.Mismatches {
				fmt.Fprintf(os.Stderr, "paperbench: fused: %s\n", m)
			}
			os.Exit(1)
		}
		bench.Fused = &fc
		bench.FusedVisitRatio = fc.VisitRatio()
		fmt.Fprintf(os.Stderr,
			"paperbench: fused == sequential over %d protocols x %d checkers; node visits %.0f -> %.0f (%.2fx), pattern evals %.0f -> %.0f, wall %.2fs -> %.2fs\n",
			fc.Protocols, fc.Checkers, fc.SeqNodeVisits, fc.FusedNodeVisits, fc.VisitRatio(),
			fc.SeqPatternEvals, fc.FusedPatternEvals, fc.SeqWallSeconds, fc.FusedWallSeconds)
	}

	if *appendFile != "" {
		var traj []trajectoryEntry
		if data, err := os.ReadFile(*appendFile); err == nil {
			if err := json.Unmarshal(data, &traj); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: append: %s: %v\n", *appendFile, err)
				os.Exit(1)
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "paperbench: append: %v\n", err)
			os.Exit(1)
		}
		traj = append(traj, trajectoryEntry{benchResult: bench, Unix: time.Now().Unix()})
		data, err := json.MarshalIndent(traj, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: append: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*appendFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: append: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("paperbench: trajectory %s now has %d entries\n", *appendFile, len(traj))
	}

	if *coverageOut != "" {
		out, err := os.Create(*coverageOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		if err := matrix.Merged.WriteJSON(out); err != nil {
			out.Close()
			fmt.Fprintf(os.Stderr, "paperbench: coverage: %v\n", err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: coverage: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchOut != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *gateFile != "" {
		data, err := os.ReadFile(*gateFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: gate: %v\n", err)
			os.Exit(1)
		}
		var baseline benchResult
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: gate: %s: %v\n", *gateFile, err)
			os.Exit(1)
		}
		if bad := gate(baseline, bench); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "paperbench: gate: %s\n", b)
			}
			os.Exit(1)
		}
		fmt.Printf("paperbench: gate ok: wall %.3fs (baseline %.3fs), %g configs (baseline %g)\n",
			bench.WallSeconds, baseline.WallSeconds, bench.ConfigsExplored, baseline.ConfigsExplored)
	}
	if *benchOut != "" || *gateFile != "" || *coverageOut != "" || *appendFile != "" {
		if !*jsonOut && !*showCoverage {
			return
		}
	}

	if *jsonOut {
		data, err := renderJSON(c, matrix, *seed, *trials)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}

	fmt.Println("=== Table 1: protocol size (paper vs measured) ===")
	t1 := c.Table1()
	paperLOC, paperPaths, paperAvg, paperMax := flash.Counts{}, flash.Counts{}, flash.Counts{}, flash.Counts{}
	for p, row := range flash.Table1 {
		paperLOC[p], paperPaths[p], paperAvg[p], paperMax[p] = row.LOC, row.Paths, row.AvgLen, row.MaxLen
	}
	fmt.Print(paper.RenderCompare("LOC", paperLOC, paper.Row(t1.LOC)))
	fmt.Print(paper.RenderCompare("# of paths", paperPaths, paper.Row(t1.Paths)))
	fmt.Print(paper.RenderCompare("avg path length", paperAvg, paper.Row(t1.AvgLen)))
	fmt.Print(paper.RenderCompare("max path length", paperMax, paper.Row(t1.MaxLen)))

	fmt.Println("\n=== Table 2: buffer race checker ===")
	t2 := c.Table2()
	fmt.Print(paper.RenderCompare("errors", flash.Table2.Errors, t2.Errors))
	fmt.Print(paper.RenderCompare("false positives", flash.Table2.FalsePos, t2.FalsePos))
	fmt.Print(paper.RenderCompare("applied", flash.Table2.Applied, t2.Applied))

	fmt.Println("\n=== Table 3: message length checker ===")
	t3 := c.Table3()
	fmt.Print(paper.RenderCompare("errors", flash.Table3.Errors, t3.Errors))
	fmt.Print(paper.RenderCompare("false positives", flash.Table3.FalsePos, t3.FalsePos))
	fmt.Print(paper.RenderCompare("applied", flash.Table3.Applied, t3.Applied))

	fmt.Println("\n=== Table 4: buffer management checker ===")
	t4 := c.Table4()
	fmt.Print(paper.RenderCompare("errors", flash.Table4.Errors, t4.Errors))
	fmt.Print(paper.RenderCompare("minor", flash.Table4.Minor, t4.Minor))
	fmt.Print(paper.RenderCompare("useful annotations", flash.Table4.Useful, t4.Useful))
	fmt.Print(paper.RenderCompare("useless annotations", flash.Table4.Useless, t4.Useless))

	fmt.Println("\n=== §7: lane deadlock checker ===")
	lanes := c.Lanes()
	fmt.Print(paper.RenderCompare("errors", flash.LanesResults.Errors, lanes.Errors))
	fmt.Print(paper.RenderCompare("false positives", flash.LanesResults.FalsePos, lanes.FalsePos))

	fmt.Println("\n=== Table 5: execution restrictions ===")
	t5 := c.Table5()
	viol := paper.Row{}
	for p, sc := range t5.Scores {
		viol[p] = sc.Violations
	}
	fmt.Print(paper.RenderCompare("violations", flash.Table5.Violations, viol))
	fmt.Print(paper.RenderCompare("handlers", flash.Table5.Handlers, t5.Handlers))
	fmt.Print(paper.RenderCompare("vars", flash.Table5.Vars, t5.Vars))

	fmt.Println("\n=== Table 6: three less effective checks ===")
	t6 := c.Table6()
	fmt.Print(paper.RenderCompare("alloc false positives", flash.Table6.BufferAlloc.FalsePos, t6.BufferAlloc.FalsePos))
	fmt.Print(paper.RenderCompare("alloc applied", flash.Table6.BufferAlloc.Applied, t6.BufferAlloc.Applied))
	fmt.Print(paper.RenderCompare("directory errors", flash.Table6.Directory.Errors, t6.Directory.Errors))
	fmt.Print(paper.RenderCompare("directory false pos", flash.Table6.Directory.FalsePos, t6.Directory.FalsePos))
	fmt.Print(paper.RenderCompare("directory applied", flash.Table6.Directory.Applied, t6.Directory.Applied))
	fmt.Print(paper.RenderCompare("send-wait false pos", flash.Table6.SendWait.FalsePos, t6.SendWait.FalsePos))
	fmt.Print(paper.RenderCompare("send-wait applied", flash.Table6.SendWait.Applied, t6.SendWait.Applied))

	fmt.Println("\n=== Table 7: summary ===")
	fmt.Printf("%-24s %12s %12s %12s %12s %8s %10s\n",
		"checker", "LOC(paper)", "LOC(ours)", "err(paper)", "err(ours)", "fp(paper)", "fp(ours)")
	errT, fpT := 0, 0
	for i, row := range c.Table7() {
		want := flash.Table7[i]
		fmt.Printf("%-24s %12d %12d %12d %12d %8d %10d\n",
			row.Checker, want.LOC, row.LOC, want.Err, row.Err, want.FalsePos, row.FalsePos)
		errT += row.Err
		fpT += row.FalsePos
	}
	fmt.Printf("%-24s %12d %12s %12d %12d %8d %10d\n", "Total",
		flash.Table7Totals.LOC, "-", flash.Table7Totals.Err, errT, flash.Table7Totals.FalsePos, fpT)

	fmt.Println("\n=== §2/§11: static vs dynamic detection ===")
	fmt.Print(paper.RenderStaticVsDynamic(c.StaticVsDynamic(*trials, *seed)))

	if *showCoverage {
		fmt.Println("\n=== Checker coverage (rule firings per protocol) ===")
		matrix.WriteTable(os.Stdout)
		dead := c.CoverageDead(matrix)
		if len(dead) == 0 {
			fmt.Println("coverage-dead: none; every lint-clean rule fired on at least one protocol")
		} else {
			for _, d := range dead {
				fmt.Printf("coverage-dead: %s\n", d)
			}
		}
	}
}
