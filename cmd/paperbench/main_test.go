package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flashmc/internal/core"
	"flashmc/internal/cover"
	"flashmc/internal/flashgen"
	"flashmc/internal/paper"
	"flashmc/internal/sched"
)

func loadBenchCorpus(t *testing.T, seed int64) *paper.Corpus {
	t.Helper()
	c, err := paper.LoadCorpus(flashgen.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Acceptance: two -json runs with the same seed are byte-identical —
// the payload carries no timestamps and no wall times.
func TestJSONDeterministic(t *testing.T) {
	render := func() []byte {
		c := loadBenchCorpus(t, 1)
		m := c.Coverage()
		data, err := renderJSON(c, m, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("two -json runs with seed 1 differ:\n%s\nvs\n%s", a, b)
	}
}

// The -json payload is versioned and carries a valid coverage artifact.
func TestJSONSchema(t *testing.T) {
	c := loadBenchCorpus(t, 1)
	m := c.Coverage()
	data, err := renderJSON(c, m, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		BenchSchema int             `json:"bench_schema"`
		Coverage    json.RawMessage `json:"coverage"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.BenchSchema != benchSchema {
		t.Errorf("bench_schema = %d, want %d", payload.BenchSchema, benchSchema)
	}
	if n, err := cover.Validate(bytes.NewReader(payload.Coverage)); err != nil {
		t.Errorf("embedded coverage artifact invalid: %v", err)
	} else if n == 0 {
		t.Error("embedded coverage artifact has no checkers")
	}
	if strings.Contains(string(data), "wall_seconds") {
		t.Error("-json payload contains wall time; it must stay deterministic")
	}
}

// The gate accepts its own baseline and flags >25% regressions.
func TestGate(t *testing.T) {
	base := benchResult{BenchSchema: benchSchema, WallSeconds: 2.0, ConfigsExplored: 1000}
	if bad := gate(base, base); len(bad) != 0 {
		t.Errorf("baseline vs itself flagged: %v", bad)
	}
	ok := base
	ok.WallSeconds = 2.4 // +20%
	if bad := gate(base, ok); len(bad) != 0 {
		t.Errorf("+20%% flagged: %v", bad)
	}
	slow := base
	slow.WallSeconds = 2.6 // +30%
	if bad := gate(base, slow); len(bad) != 1 || !strings.Contains(bad[0], "wall_seconds") {
		t.Errorf("+30%% wall time not flagged: %v", bad)
	}
	blown := base
	blown.ConfigsExplored = 1300
	if bad := gate(base, blown); len(bad) != 1 || !strings.Contains(bad[0], "configs_explored") {
		t.Errorf("+30%% configs not flagged: %v", bad)
	}
	vers := base
	vers.BenchSchema = benchSchema + 1
	if bad := gate(base, vers); len(bad) != 1 || !strings.Contains(bad[0], "bench_schema") {
		t.Errorf("schema change not flagged: %v", bad)
	}
}

// BenchmarkWarmFrontend measures what mcheckd's program cache saves:
// a cold frontend pass over one protocol (cpp, lex, parse, typecheck,
// CFG, fingerprint walk) versus a ProgramCache hit on the same tree,
// which skips all of it and returns the resident parse.
func BenchmarkWarmFrontend(b *testing.B) {
	gen := flashgen.Generate(flashgen.Options{Seed: 1})
	p := gen.Protocol("bitvector")
	if p == nil {
		b.Fatal("protocol bitvector not generated")
	}
	parse := func() (*core.Program, error) {
		return core.Load(p.Name, p.Source(), p.RootFiles)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog, err := parse()
			if err != nil {
				b.Fatal(err)
			}
			sched.ProgramFingerprint(prog, sched.Fingerprints(prog))
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := &sched.ProgramCache{}
		hash := sched.SourceHash(p.Files, p.RootFiles)
		if _, _, err := cache.Load(hash, parse); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := cache.Load(hash, parse); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}

// The measured bench result counts real engine work.
func TestMeasure(t *testing.T) {
	c := loadBenchCorpus(t, 1)
	m, bench := measure(c, 1)
	if bench.BenchSchema != benchSchema {
		t.Errorf("bench_schema = %d", bench.BenchSchema)
	}
	if bench.Protocols != len(m.Protocols) || bench.Checkers != len(m.Checkers) {
		t.Errorf("shape mismatch: %+v vs %d protocols, %d checkers", bench, len(m.Protocols), len(m.Checkers))
	}
	if bench.WallSeconds <= 0 {
		t.Errorf("wall_seconds = %g", bench.WallSeconds)
	}
	if bench.ConfigsExplored <= 0 || bench.RulesFired <= 0 {
		t.Errorf("no engine work attributed: %+v", bench)
	}
}
