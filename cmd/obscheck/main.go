// obscheck validates observability artifacts; ci.sh gates on it.
//
// Usage:
//
//	obscheck -prom metrics.txt         validate Prometheus text exposition
//	obscheck -trace trace.json         validate Chrome trace_event JSON
//	obscheck -coverage coverage.json   validate a coverage/v1 artifact
//
// -prom parses the file with the repo's own Prometheus text parser
// (HELP/TYPE discipline, label syntax, histogram bucket contract) and
// prints the family count. -trace requires well-formed trace_event
// JSON with at least one complete ("ph":"X") span and monotone
// per-lane timestamps, and prints the span count plus a per-process
// breakdown (pid, process_name metadata, span count) — CI greps it to
// assert a fleet trace really contains several workers. -coverage
// checks kind, key shapes and count invariants of a
// coverage artifact (mcheck -coverage-out, mcheckd /debug/coverage)
// and prints the checker count. Any flag may be repeated; any failure
// exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flashmc/internal/cover"
	"flashmc/internal/obs"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var promFiles, traceFiles, coverageFiles stringList
	flag.Var(&promFiles, "prom", "Prometheus text exposition file to validate (repeatable)")
	flag.Var(&traceFiles, "trace", "Chrome trace_event JSON file to validate (repeatable)")
	flag.Var(&coverageFiles, "coverage", "coverage/v1 JSON artifact to validate (repeatable)")
	flag.Parse()

	if len(promFiles) == 0 && len(traceFiles) == 0 && len(coverageFiles) == 0 {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check; pass -prom, -trace and/or -coverage")
		flag.Usage()
		os.Exit(2)
	}

	ok := true
	for _, f := range promFiles {
		r, err := os.Open(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			ok = false
			continue
		}
		fams, err := obs.ParsePrometheus(r)
		r.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", f, err)
			ok = false
			continue
		}
		if len(fams) == 0 {
			fmt.Fprintf(os.Stderr, "obscheck: %s: no metric families\n", f)
			ok = false
			continue
		}
		samples := 0
		for _, fam := range fams {
			samples += len(fam.Samples)
		}
		fmt.Printf("obscheck: %s: %d families, %d samples\n", f, len(fams), samples)
	}
	for _, f := range traceFiles {
		r, err := os.Open(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			ok = false
			continue
		}
		stats, err := obs.ValidateTraceStats(r)
		r.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", f, err)
			ok = false
			continue
		}
		fmt.Printf("obscheck: %s: %d complete spans\n", f, stats.Spans)
		for _, p := range stats.Processes {
			fmt.Printf("obscheck: %s:   pid=%d name=%q spans=%d\n", f, p.PID, p.Name, p.Spans)
		}
	}
	for _, f := range coverageFiles {
		r, err := os.Open(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			ok = false
			continue
		}
		n, err := cover.Validate(r)
		r.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", f, err)
			ok = false
			continue
		}
		if n == 0 {
			fmt.Fprintf(os.Stderr, "obscheck: %s: no checker entries\n", f)
			ok = false
			continue
		}
		fmt.Printf("obscheck: %s: %d checkers\n", f, n)
	}
	if !ok {
		os.Exit(1)
	}
}
