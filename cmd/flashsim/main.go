// flashsim runs the FlashLite-style dynamic simulator over the
// generated FLASH corpus: every dispatchable handler is driven with
// randomized workloads and dynamic failures (double frees, leaks,
// lane overflows, length mismatches, stale directory entries, hangs)
// are reported with the trial at which they first surfaced.
//
// Usage:
//
//	flashsim [-seed N] [-trials N] [-protocol NAME]
package main

import (
	"flag"
	"fmt"
	"os"

	"flashmc/internal/core"
	"flashmc/internal/flashgen"
	"flashmc/internal/flashsim"
)

func main() {
	seed := flag.Int64("seed", 1, "corpus + workload seed")
	trials := flag.Int("trials", 100, "randomized activations per handler")
	protocol := flag.String("protocol", "", "simulate one protocol only")
	flag.Parse()

	gen := flashgen.Generate(flashgen.Options{Seed: *seed})
	for _, p := range gen.Protocols {
		if *protocol != "" && p.Name != *protocol {
			continue
		}
		prog, err := core.Load(p.Name, p.Source(), p.RootFiles)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashsim: %s: %v\n", p.Name, err)
			os.Exit(1)
		}
		res := flashsim.Fuzz(prog, p.Spec, *trials, *seed)
		fmt.Printf("== %s ==\n%s", p.Name, res)
	}
}
