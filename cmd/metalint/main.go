// metalint is the static-analysis suite for metal checkers: it
// analyzes the analyses. The paper's §11 "betrayal incident" — a
// hand-inserted INC_DB_REF that silently blinded the buffer checker —
// is the motivating failure: a broken checker looks exactly like a
// clean run. metalint makes that failure loud.
//
// Usage:
//
//	metalint [-I dir]... [-c file.c]... [-flash] [-triage[=slice|sym]] [-v] checker.metal...
//
// Each checker.metal argument is compiled and run through the SM lint
// passes: unreachable states, shadowed/overlapping rules, unused
// wildcard declarations, dead patterns outside the FLASH protocol
// vocabulary, and absorbing states. -flash lints the built-in checker
// suite the same way.
//
// With -c, protocol-C sources are loaded: their function names extend
// the pattern vocabulary, each function's CFG is scanned for repeated
// non-identifier branch conditions the engine's correlated-branch
// pruner cannot see (its key-space bound), and -triage additionally
// runs every linted checker over the program and prints each report
// with a confidence from the feasibility replay: 'slice' ranks
// certain / likely-fp from path slicing alone, 'sym' adds the bounded
// symbolic evaluator, which can prove firing paths unsatisfiable and
// demote their reports to infeasible. Bare -triage keeps its
// pre-sym meaning: slice mode.
//
// Exit status: 2 on usage errors, 1 if any Error-severity finding (or
// any certain report under -triage) was produced, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/lint"
	"flashmc/internal/metal"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

// triageValue keeps -triage working both ways: it started life as a
// bool flag (bare -triage ran the slicing replay), so it must parse
// with no value, while -triage=sym selects the symbolic rung. The
// bool-flag form means the value cannot be space-separated: it is
// -triage=sym, not -triage sym.
type triageValue struct {
	mode lint.TriageMode
	on   bool
}

func (t *triageValue) String() string   { return string(t.mode) }
func (t *triageValue) IsBoolFlag() bool { return true }

func (t *triageValue) Set(v string) error {
	switch v {
	case "true", "": // bare -triage: the original slice-mode replay
		t.mode, t.on = lint.ModeSlice, true
	case "false":
		t.mode, t.on = "", false
	case "slice":
		t.mode, t.on = lint.ModeSlice, true
	case "sym":
		t.mode, t.on = lint.ModeSym, true
	default:
		return fmt.Errorf("want 'slice' or 'sym'")
	}
	return nil
}

func main() {
	var includes, cFiles stringList
	flag.Var(&includes, "I", "include search directory (repeatable)")
	flag.Var(&cFiles, "c", "protocol-C source to load (repeatable)")
	flashSuite := flag.Bool("flash", false, "lint the built-in FLASH checker suite")
	var triage triageValue
	flag.Var(&triage, "triage", "run linted checkers over -c sources and rank each report: bare or =slice for slicing, =sym adds the symbolic evaluator")
	verbose := flag.Bool("v", false, "print Info-level findings too")
	flag.Parse()

	metalFiles := flag.Args()
	if len(metalFiles) == 0 && !*flashSuite && len(cFiles) == 0 {
		fmt.Fprintln(os.Stderr, "metalint: nothing to lint (give checker.metal files, -flash, or -c sources)")
		flag.Usage()
		os.Exit(2)
	}

	vocab := lint.FlashVocab()
	var prog *core.Program
	if len(cFiles) > 0 {
		var err error
		prog, err = core.Load("metalint", cpp.Layered(cpp.OSSource{}, flash.HeaderSource()), cFiles, includes...)
		if err != nil {
			fail("load: %v", err)
		}
		for _, e := range prog.ParseErrors {
			fmt.Fprintf(os.Stderr, "metalint: %v\n", e)
		}
		if len(prog.ParseErrors) > 0 {
			os.Exit(1)
		}
		for _, fn := range prog.Fns {
			vocab.Add(fn.Name)
		}
	}

	errors := 0
	emit := func(scope string, diags []lint.Diag) {
		for _, d := range diags {
			if d.Severity == lint.Info && !*verbose {
				continue
			}
			fmt.Printf("%s: %s\n", scope, d)
		}
		errors += len(lint.Errors(diags))
	}

	// One linted SM per source, kept for -triage.
	type target struct {
		name string
		sm   *engine.SM
	}
	var targets []target

	for _, mf := range metalFiles {
		src, err := os.ReadFile(mf)
		if err != nil {
			fail("%v", err)
		}
		mp, err := metal.Compile(string(src), metal.Options{
			Include: cpp.Layered(cpp.OSSource{}, flash.HeaderSource()), IncludeDirs: includes,
		})
		if err != nil {
			fail("%s: %v", mf, err)
		}
		emit(mf, lint.CheckMetal(mp, vocab))
		targets = append(targets, target{name: mp.Name, sm: mp.SM})
	}

	var spec *flash.Spec
	if *flashSuite {
		spec = conventionSpec(prog)
		for _, chk := range checkers.All() {
			prov, ok := chk.(checkers.SMProvider)
			if !ok {
				continue // global pass, no SM
			}
			sm, decls := prov.BuildSM(spec)
			emit(chk.Name(), lint.CheckSM(lint.Target{SM: sm, Decls: decls, Vocab: vocab}))
			targets = append(targets, target{name: chk.Name(), sm: sm})
		}
	}

	if prog != nil {
		for _, g := range prog.Graphs {
			emit(g.Fn.Name, lint.CheckGraph(g))
		}
	}

	certain := 0
	if triage.on {
		if prog == nil {
			fail("-triage needs -c sources to run the checkers over")
		}
		for _, t := range targets {
			reports := prog.RunSM(t.sm)
			ranked := lint.TriageProgram(prog, t.sm, reports, lint.TriageOptions{Mode: triage.mode})
			lint.SortRanked(ranked)
			for _, rr := range ranked {
				fmt.Printf("%s: [%s] %s (%s: %s)\n", rr.Pos, t.name, rr.Msg, rr.Confidence, rr.Reason)
				if rr.Confidence == lint.Certain {
					certain++
				}
			}
		}
	}

	if errors > 0 || certain > 0 {
		os.Exit(1)
	}
}

// conventionSpec mirrors mcheck's naming-convention spec; with no
// loaded program it is empty, which still lints the suite's built-in
// rule sets.
func conventionSpec(prog *core.Program) *flash.Spec {
	spec := &flash.Spec{
		Protocol:        "metalint",
		Allowance:       map[string]flash.LaneVector{},
		NoStack:         map[string]bool{},
		BufferFreeFns:   map[string]bool{},
		BufferUseFns:    map[string]bool{},
		CondFreeFns:     map[string]bool{},
		DirWritebackFns: map[string]bool{},
	}
	if prog != nil {
		for _, fn := range prog.Fns {
			switch flash.ClassifyName(fn.Name) {
			case flash.HardwareHandler:
				spec.Hardware = append(spec.Hardware, fn.Name)
			case flash.SoftwareHandler:
				spec.Software = append(spec.Software, fn.Name)
			}
		}
	}
	return spec
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metalint: "+format+"\n", args...)
	os.Exit(1)
}
