// metalc compiles metal checker programs and dumps their structure —
// a development aid for checker authors (the paper's users are system
// implementors writing their own extensions).
//
// Usage:
//
//	metalc [-I dir]... checker.metal...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/flash"
	"flashmc/internal/metal"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var includes stringList
	flag.Var(&includes, "I", "include search directory (repeatable)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "metalc: no input files")
		os.Exit(2)
	}
	exit := 0
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metalc: %v\n", err)
			exit = 1
			continue
		}
		prog, err := metal.Compile(string(src), metal.Options{
			Include:     cpp.Layered(cpp.OSSource{}, flash.HeaderSource()),
			IncludeDirs: includes,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metalc: %s: %v\n", file, err)
			exit = 1
			continue
		}
		dump(file, prog)
	}
	os.Exit(exit)
}

func dump(file string, prog *metal.Program) {
	fmt.Printf("%s: sm %s (%d source lines)\n", file, prog.Name, prog.LOC)
	if len(prog.Decls) > 0 {
		fmt.Printf("  wildcards:\n")
		for name, c := range prog.Decls {
			fmt.Printf("    %-12s %s\n", name, c)
		}
	}
	if len(prog.TrackVars) > 0 {
		fmt.Printf("  tracked: %s\n", strings.Join(prog.TrackVars, ", "))
	}
	if len(prog.PatternNames) > 0 {
		fmt.Printf("  named patterns: %s\n", strings.Join(prog.PatternNames, ", "))
	}
	fmt.Printf("  start state: %s\n", prog.SM.Start)
	if len(prog.SM.Cond) > 0 {
		fmt.Printf("  cond rules: %d\n", len(prog.SM.Cond))
	}
	fmt.Printf("  rules:\n")
	for _, r := range prog.SM.Rules {
		target := r.Target
		if target == "" {
			target = "(stay)"
		}
		action := ""
		if r.Action != nil {
			action = " +action"
		}
		fmt.Printf("    %-14s %d pattern(s) ==> %s%s\n", r.State+":", len(r.Patterns), target, action)
	}
}
