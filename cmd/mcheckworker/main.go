// mcheckworker is one stateless member of a distributed checking
// fleet: mcheckd serializes cache-missed scheduler tasks into
// fleet.Descriptors and POSTs them here; the worker reads the
// request's source bundle from the shared depot, recomputes the
// artifact, stores it back under the descriptor's output key, and
// echoes it in the response. Workers hold no request state — any
// worker can run any task, which is what makes work-stealing and
// retry-on-failure safe.
//
// Usage:
//
//	mcheckworker -cache DIR [-addr :8290] [-cache-shards N]
//
// Endpoints:
//
//	POST /task     one fleet.Descriptor in, {id, artifact} out.
//	               400/422 refuse the task terminally (bad wire
//	               format, version skew); 5xx asks for a retry.
//	GET  /healthz  readiness: 200 while the depot is reachable.
//	GET  /metrics  Prometheus text: task counts, execution latency,
//	               plus the process-wide engine/sched/depot metrics.
//
// -cache must name the same depot directory mcheckd serves from (a
// shared volume); the depot is both the task input channel (source
// bundles) and the artifact output channel.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"flashmc/internal/depot"
	"flashmc/internal/fleet"
	"flashmc/internal/obs"
	"flashmc/internal/sched"
)

var nextReqID atomic.Uint64

// statusWriter captures the status code a handler sent so the request
// log can record it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withRequestLog gives the worker the same HTTP discipline as
// mcheckd: every request carries an X-Request-Id — reused from the
// caller (the dispatcher stamps task requests with the originating
// /check's id) so fleet logs correlate across processes, minted
// locally otherwise — echoed in the response, and logged with status
// and duration.
func withRequestLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = fmt.Sprintf("wreq-%06d", nextReqID.Add(1))
		}
		w.Header().Set("X-Request-Id", reqID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		log.Printf("mcheckworker: id=%s method=%s path=%s status=%d dur=%s",
			reqID, r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

// newWorkerMux assembles the worker's HTTP surface over one depot.
// producer names this worker in the provenance records it writes
// beside computed artifacts (its listen address).
func newWorkerMux(store *depot.Depot, producer string) http.Handler {
	exec := sched.NewExecutor(store)
	exec.Producer = producer
	mux := http.NewServeMux()
	mux.Handle("/task", fleet.TaskHandler(exec.Execute))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := store.Ping(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.WritePrometheus(w)
	})
	return withRequestLog(mux)
}

func main() {
	addr := flag.String("addr", ":8290", "listen address")
	cacheDir := flag.String("cache", "", "shared artifact depot directory (required; same volume as mcheckd's -cache)")
	cacheShards := flag.Int("cache-shards", 0, "depot shard count (0: adopt the directory's existing layout)")
	flag.Parse()

	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "mcheckworker: -cache is required (workers read bundles and write artifacts through the shared depot)")
		os.Exit(2)
	}
	store, err := depot.OpenSharded(*cacheDir, *cacheShards)
	if err != nil {
		log.Fatalf("mcheckworker: %v", err)
	}
	log.Printf("mcheckworker: listening on %s (cache=%q)", *addr, *cacheDir)
	log.Fatal(http.ListenAndServe(*addr, newWorkerMux(store, *addr)))
}
