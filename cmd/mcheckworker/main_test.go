package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flashmc/internal/depot"
)

// TestWorkerMux smoke-tests the worker's HTTP surface: readiness,
// metrics, and the /task error contract for requests that never reach
// a real executor run.
func TestWorkerMux(t *testing.T) {
	store, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newWorkerMux(store, "127.0.0.1:test"))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	for _, want := range []string{"# HELP", "fleet_worker_tasks_total"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("metrics exposition lacks %q:\n%s", want, raw)
		}
	}

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/task", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed task body: %d, want 400", code)
	}
	if code := post(`{"format":"task/v0"}`); code != http.StatusBadRequest {
		t.Fatalf("wrong descriptor format: %d, want 400", code)
	}
	// Well-formed descriptor whose bundle is nowhere: transient 500,
	// so the dispatcher retries elsewhere instead of giving up. The v1
	// wire format (pre trace fields) stays accepted.
	valid := `{"format":"task/v1","kind":"glob","src_hash":"0000","spec_opt":"o",
		"output":{"kind":"reports/v3","source":"s","checker":"c","version":"v","options":"o"},
		"checker":"c","checker_version":"v"}`
	if code := post(valid); code != http.StatusInternalServerError {
		t.Fatalf("missing bundle: %d, want 500", code)
	}
	validV2 := strings.Replace(valid, "task/v1", "task/v2", 1)
	if code := post(validV2); code != http.StatusInternalServerError {
		t.Fatalf("missing bundle (v2): %d, want 500", code)
	}
}

// TestWorkerRequestID: the worker reuses the dispatcher's
// X-Request-Id (so fleet logs correlate to the originating /check) and
// mints one for direct callers.
func TestWorkerRequestID(t *testing.T) {
	store, err := depot.Open("")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newWorkerMux(store, "127.0.0.1:test"))
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "req-from-leader")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-from-leader" {
		t.Fatalf("X-Request-Id = %q, want the inbound id echoed", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "wreq-") {
		t.Fatalf("minted X-Request-Id = %q, want wreq- prefix", got)
	}
}
