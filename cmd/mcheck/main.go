// mcheck is the xg++ analogue: it applies metal checkers (and the
// built-in FLASH suite) to protocol-C sources.
//
// Usage:
//
//	mcheck [-I dir]... [-checker file.metal]... [-flash] [-j N]
//	       [-cache DIR] [-cache-shards N] [-cache-max-bytes N]
//	       [-triage slice|sym] file.c...
//	mcheck -emit summaries.json file.c...     (local pass, paper §3.2)
//	mcheck -link summaries.json...            (global lane pass, §7)
//
// Checkers execute through the internal/sched parallel scheduler: -j
// sizes the worker pool (default GOMAXPROCS) and -cache names a
// content-addressed artifact depot reused across runs, so a re-check
// after an edit re-analyzes only the changed functions and their
// call-graph dependents. cmd/mcheckd serves the same path over HTTP.
// -cache-shards fans the depot over N independently locked shard
// roots (0 adopts the directory's existing layout); -cache-max-bytes
// bounds the depot after the run, evicting least-recently-used
// artifacts first.
//
// With -flash the built-in eight-checker FLASH suite runs using the
// naming-convention protocol spec (h_* hardware handlers, sw_*
// software handlers). Each -checker flag compiles and runs one metal
// program. Diagnostics print one per line as file:line:col: message.
//
// Observability: -why prints each report's witness trace (the ordered
// rule firings and branch refinements along the failing path), -trace
// writes a Chrome trace_event JSON file of the run (load it in
// chrome://tracing or ui.perfetto.dev), -stats prints process metrics
// to stderr, and -metrics writes them in Prometheus text format.
// -coverage prints each checker's dynamic rule/state coverage and
// wall-time attribution; -coverage-out writes the coverage/v1 JSON
// artifact (validated by obscheck -coverage).
//
// Provenance: -explain prints, for every report, the artifact it was
// assembled from, this run's cache decision for that artifact, the
// producer (local pid or worker address), checker version, and wall
// cost. Each run against a persistent -cache appends an entry to the
// depot's run ledger; -runs lists the ledger and -diff OLD,NEW
// compares two entries — appeared/disappeared reports (with witness
// traces) to stdout, perf deltas to stderr — with no input files.
//
// With -triage every SM report is ranked by path feasibility before
// printing: 'slice' replays reports over loop-bounded paths and
// demotes those firing only on branch-contradictory paths to
// likely-fp; 'sym' additionally runs a bounded symbolic evaluator
// over each firing path and demotes reports whose every path is
// provably unsatisfiable to infeasible. Certain reports print first.
// Verdicts are cached in -cache keyed by program fingerprint, checker,
// triage version, and options, so a warm re-triage skips the replay.
//
// With -lint every checker state machine is linted (package lint)
// before anything runs; lint errors — dead rules, unreachable states,
// patterns outside the protocol vocabulary — abort the run, so a
// broken checker cannot silently report nothing (the paper's §11
// failure mode).
//
// -emit/-link reproduce the paper's file-based inter-procedural
// workflow: the local pass annotates each send with its lane and
// writes per-function flow graphs; the link pass merges any number of
// summary files into a whole-protocol call graph and runs the lane
// quota traversal (with default allowance 1/1/1/1 per handler).
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/cover"
	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/global"
	"flashmc/internal/lint"
	"flashmc/internal/obs"
	"flashmc/internal/sched"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var includes, checkerFiles stringList
	flag.Var(&includes, "I", "include search directory (repeatable)")
	flag.Var(&checkerFiles, "checker", "metal checker source file (repeatable)")
	flashSuite := flag.Bool("flash", false, "run the built-in FLASH checker suite")
	lintSMs := flag.Bool("lint", false, "lint checker state machines before running; exit on lint errors")
	verbose := flag.Bool("v", false, "print per-checker summaries and cache statistics")
	emit := flag.String("emit", "", "local pass: write annotated flow-graph summaries to this file")
	link := flag.Bool("link", false, "global pass: arguments are summary files; run the lane checker")
	workers := flag.Int("j", 0, "parallel analysis workers (default GOMAXPROCS)")
	fused := flag.Bool("fused", false, "fuse all state-machine checkers into one product automaton: each function is walked once for every checker, with byte-identical reports")
	cacheDir := flag.String("cache", "", "artifact depot directory; reuses results for unchanged functions across runs")
	cacheShards := flag.Int("cache-shards", 0, "depot shard count (0: adopt the directory's existing layout)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "if set, evict least-recently-used depot artifacts beyond this many bytes after the run")
	why := flag.Bool("why", false, "print each report's witness trace (the path steps that led to it)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file of the run to this path")
	stats := flag.Bool("stats", false, "print process metrics to stderr after the run")
	metricsOut := flag.String("metrics", "", "write Prometheus text exposition of process metrics to this path")
	coverage := flag.Bool("coverage", false, "collect per-checker rule/state coverage; print a table and timing attribution to stderr")
	coverageOut := flag.String("coverage-out", "", "write the coverage/v1 JSON artifact to this path (implies -coverage)")
	triageFlag := flag.String("triage", "", "rank reports by path feasibility: 'slice' (correlated-branch slicing) or 'sym' (slicing plus bounded symbolic evaluation); verdicts cache in -cache")
	runsList := flag.Bool("runs", false, "list the -cache depot's run ledger and exit (takes no input files)")
	diffSpec := flag.String("diff", "", "compare two run-ledger entries OLD,NEW from -cache and exit: report changes to stdout (empty = identical), perf deltas to stderr")
	explain := flag.Bool("explain", false, "after the run, print each report's provenance (artifact, cache decision, producer, checker version, cost) to stderr")
	versionSalt := flag.String("version-salt", "", "append this salt to every checker version (testing aid: forces checker-version-bump cache misses)")
	flag.Parse()

	triageMode, ok := parseTriageMode(*triageFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "mcheck: -triage %q: want 'slice' or 'sym'\n", *triageFlag)
		os.Exit(2)
	}

	// -j must be a positive worker count; an unset (or zero) flag means
	// "use every CPU" rather than silently misbehaving.
	jSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "j" {
			jSet = true
		}
	})
	if jSet && *workers < 1 {
		fmt.Fprintf(os.Stderr, "mcheck: -j %d: worker count must be >= 1\n", *workers)
		os.Exit(2)
	}
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}

	// Ledger-only modes read the depot directly and take no input
	// files; they must be dispatched before the no-input check.
	if *runsList || *diffSpec != "" {
		if *cacheDir == "" {
			fail("-runs/-diff read the run ledger from a persistent depot; pass -cache DIR")
		}
		store, err := depot.OpenSharded(*cacheDir, *cacheShards)
		if err != nil {
			fail("%v", err)
		}
		if *runsList {
			os.Exit(runsCmd(store))
		}
		os.Exit(diffCmd(store, *diffSpec))
	}

	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "mcheck: no input files")
		flag.Usage()
		os.Exit(2)
	}

	if *link {
		os.Exit(linkPass(files))
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		tracer.SetProcess(os.Getpid(), "mcheck")
	}

	parseSp := tracer.StartSpan("parse", 0)
	prog, err := core.Load("mcheck", cpp.Layered(cpp.OSSource{}, flash.HeaderSource()), files, includes...)
	parseSp.End()
	if err != nil {
		fail("load: %v", err)
	}
	for _, e := range prog.ParseErrors {
		fmt.Fprintf(os.Stderr, "mcheck: %v\n", e)
	}
	if len(prog.ParseErrors) > 0 {
		os.Exit(1)
	}

	if *emit != "" {
		out, err := os.Create(*emit)
		if err != nil {
			fail("%v", err)
		}
		defer out.Close()
		if err := global.Write(out, checkers.Summarize(prog)); err != nil {
			fail("emit: %v", err)
		}
		fmt.Printf("emitted %d function summaries to %s\n", len(prog.Fns), *emit)
		return
	}

	// Assemble the scheduler job list: ad-hoc metal checkers first
	// (in flag order), then the built-in suite — the historical run
	// order, which fixes report assembly. Lint metadata (SM + decl
	// table) is collected alongside so broken checkers fail loudly
	// before anything runs (the paper's §11 failure mode).
	type lintTarget struct {
		sm    *engine.SM
		decls map[string]string
	}
	var (
		jobs        []sched.Job
		lintTargets []lintTarget
	)
	// Triage keys machines and cache versions by the name reports
	// carry (sm.Name, which can differ from the registry name).
	triageSMs := map[string]*engine.SM{}
	triageVersions := map[string]string{}

	spec := sched.ConventionSpec(prog)
	specOpt := sched.SpecHash(spec)
	for _, cf := range checkerFiles {
		src, err := os.ReadFile(cf)
		if err != nil {
			fail("%v", err)
		}
		mp, err := prog.CompileChecker(string(src))
		if err != nil {
			fail("%s: %v", cf, err)
		}
		// An ad-hoc checker has no declared version; its source hash
		// takes that role in the depot key, so editing the .metal
		// file invalidates its cached results.
		srcHash := sha256.Sum256([]byte(src))
		version := "adhoc-" + hex.EncodeToString(srcHash[:8])
		jobs = append(jobs, sched.Job{Name: mp.Name, Version: version,
			Options: specOpt, SM: mp.SM})
		lintTargets = append(lintTargets, lintTarget{sm: mp.SM, decls: mp.Decls})
		triageSMs[mp.SM.Name] = mp.SM
		triageVersions[mp.SM.Name] = version
	}
	if *flashSuite {
		jobs = append(jobs, sched.FlashJobs(spec)...)
		for _, chk := range checkers.All() {
			if prov, ok := chk.(checkers.SMProvider); ok {
				sm, decls := prov.BuildSM(spec)
				lintTargets = append(lintTargets, lintTarget{sm: sm, decls: decls})
				triageSMs[sm.Name] = sm
				triageVersions[sm.Name] = chk.Version()
			}
		}
	}

	if *versionSalt != "" {
		// Salting every version makes each depot key miss with reason
		// checker-version-bump while leaving the computed reports
		// unchanged — ci.sh uses it to gate miss attribution.
		for i := range jobs {
			jobs[i].Version += "+" + *versionSalt
		}
		for name := range triageVersions {
			triageVersions[name] += "+" + *versionSalt
		}
	}

	if *lintSMs {
		vocab := lint.FlashVocab()
		for _, fn := range prog.Fns {
			vocab.Add(fn.Name)
		}
		lintErrors := 0
		for _, lt := range lintTargets {
			diags := lint.CheckSM(lint.Target{SM: lt.sm, Decls: lt.decls, Vocab: vocab})
			for _, d := range diags {
				if d.Severity >= lint.Warn || *verbose {
					fmt.Fprintf(os.Stderr, "mcheck: lint: %s\n", d)
				}
			}
			lintErrors += len(lint.Errors(diags))
		}
		if lintErrors > 0 {
			fail("lint: %d error(s); not running checkers", lintErrors)
		}
	}

	// The CLI and mcheckd share this execution path: the depot-backed
	// parallel scheduler. Without -cache the depot lives in memory
	// for this one run.
	store, err := depot.OpenSharded(*cacheDir, *cacheShards)
	if err != nil {
		fail("%v", err)
	}
	var covSet *cover.Set
	if *coverage || *coverageOut != "" {
		covSet = cover.NewSet()
	}
	analyzer := &sched.Analyzer{Depot: store, Workers: *workers, Tracer: tracer, Coverage: covSet}
	req := sched.Request{Prog: prog, Spec: spec, Jobs: jobs, Fused: *fused}
	res, err := analyzer.Check(req)
	if err != nil {
		fail("%v", err)
	}
	// Record the run in the depot's ledger. Only a persistent depot is
	// worth recording into: an in-memory ledger dies with the process.
	var runEntry *sched.RunEntry
	if *cacheDir != "" {
		runEntry = sched.NewRunEntry(&req, res, covSet)
		if err := sched.AppendRun(store, runEntry); err != nil {
			fmt.Fprintf(os.Stderr, "mcheck: ledger: %v\n", err)
			runEntry = nil
		}
	}
	reports := res.Reports
	if *verbose {
		byChecker := map[string]int{}
		for _, r := range reports {
			byChecker[r.SM]++
		}
		for _, j := range jobs {
			fmt.Printf("checker %s: %d reports\n", j.Name, byChecker[j.Name])
		}
		st := res.Stats
		fmt.Printf("analysis: %d functions, %d tasks, %d cache hits, %d misses (%.0f%% hit rate), %d re-analyzed, %s elapsed\n",
			st.Functions, st.Tasks, st.CacheHits, st.CacheMisses,
			100*float64(st.CacheHits)/float64(max(1, st.CacheHits+st.CacheMisses)),
			len(st.Reanalyzed), st.Elapsed.Round(1000000))
		if runEntry != nil {
			fmt.Printf("run %s recorded (%s)\n", runEntry.ID, runEntry.DecisionLine())
		}
	}

	if triageMode != "" {
		// Second triage rung: rank every report by path feasibility,
		// serving verdicts from the depot when the program, checker,
		// and triage options are unchanged.
		ranked, tst := analyzer.TriageReports(sched.TriageRequest{Prog: prog,
			SMs: triageSMs, Versions: triageVersions, Reports: reports,
			Options: lint.TriageOptions{Mode: triageMode}})
		if *verbose {
			fmt.Printf("triage: %d verdict groups from cache, %d recomputed\n",
				tst.CacheHits, tst.CacheMisses)
		}
		lint.SortRanked(ranked)
		for _, r := range ranked {
			fmt.Printf("%s: [%s] %s (%s: %s)\n", r.Pos, r.SM, r.Msg, r.Confidence, r.Reason)
			if *why {
				for i, s := range r.Trace {
					fmt.Printf("    #%d %s\n", i+1, s)
				}
			}
		}
		// Triage re-ranks reports, severing the per-report provenance
		// index; explain at artifact granularity instead.
		if *explain {
			explainArtifacts(store, res)
		}
	} else {
		// Sort an index permutation instead of the reports themselves,
		// so each printed report keeps its Result.RefIdx provenance link
		// for -explain.
		order := make([]int, len(reports))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := reports[order[i]], reports[order[j]]
			if a.Pos.File != b.Pos.File {
				return a.Pos.File < b.Pos.File
			}
			return a.Pos.Line < b.Pos.Line
		})
		for _, ri := range order {
			r := reports[ri]
			fmt.Printf("%s: [%s] %s\n", r.Pos, r.SM, r.Msg)
			if *why {
				for i, s := range r.Trace {
					fmt.Printf("    #%d %s\n", i+1, s)
				}
			}
			if *explain {
				explainReport(store, res, ri)
			}
		}
	}

	// Enforce the byte budget after the run (and before the -stats /
	// -metrics dumps, so depot_gc_evicted_bytes_total reflects it):
	// this run's own artifacts count, so a depot shared across runs
	// stays bounded no matter who wrote last.
	if *cacheMaxBytes > 0 {
		if _, err := store.GC(0, *cacheMaxBytes); err != nil {
			fail("cache gc: %v", err)
		}
	}

	if *traceOut != "" {
		out, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		if err := tracer.WriteJSON(out); err != nil {
			out.Close()
			fail("trace: %v", err)
		}
		if err := out.Close(); err != nil {
			fail("trace: %v", err)
		}
	}
	if covSet != nil {
		snap := covSet.Snapshot()
		fmt.Fprintln(os.Stderr, "coverage:")
		snap.WriteTable(os.Stderr)
		// Timing attribution is live-only: on a fully warm cache there is
		// nothing to attribute and the section is silent.
		if timings := covSet.Timings(); len(timings) > 0 {
			fmt.Fprintln(os.Stderr, "timings:")
			for _, t := range timings {
				if t.Seconds == 0 && t.SlowestFn == "" {
					continue
				}
				fmt.Fprintf(os.Stderr, "%-16s runs=%d total=%.3fs p50=%.3fms p95=%.3fms p99=%.3fms slowest=%s (%.3fms)\n",
					t.Checker, t.Runs, t.Seconds,
					t.P50*1000, t.P95*1000, t.P99*1000,
					t.SlowestFn, t.SlowestSeconds*1000)
			}
		}
		if *coverageOut != "" {
			out, err := os.Create(*coverageOut)
			if err != nil {
				fail("%v", err)
			}
			if err := snap.WriteJSON(out); err != nil {
				out.Close()
				fail("coverage: %v", err)
			}
			if err := out.Close(); err != nil {
				fail("coverage: %v", err)
			}
		}
	}
	if *metricsOut != "" {
		out, err := os.Create(*metricsOut)
		if err != nil {
			fail("%v", err)
		}
		if err := obs.Default.WritePrometheus(out); err != nil {
			out.Close()
			fail("metrics: %v", err)
		}
		if err := out.Close(); err != nil {
			fail("metrics: %v", err)
		}
	}
	if *stats {
		snap := obs.Default.Snapshot()
		names := make([]string, 0, len(snap))
		for n := range snap {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(os.Stderr, "%s %g\n", n, snap[n])
		}
	}

	if len(reports) > 0 {
		os.Exit(1)
	}
}

// linkPass merges summary files and runs the global lane traversal.
func linkPass(files []string) int {
	var sums []*global.Summary
	for _, f := range files {
		r, err := os.Open(f)
		if err != nil {
			fail("%v", err)
		}
		s, err := global.Read(r)
		r.Close()
		if err != nil {
			fail("%s: %v", f, err)
		}
		sums = append(sums, s...)
	}
	prog, errs := global.Link(sums)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "mcheck: link: %v\n", e)
	}
	spec := &flash.Spec{Protocol: "cli", Allowance: map[string]flash.LaneVector{}}
	for fn := range prog.Funcs {
		switch flash.ClassifyName(fn) {
		case flash.HardwareHandler:
			spec.Hardware = append(spec.Hardware, fn)
		case flash.SoftwareHandler:
			spec.Software = append(spec.Software, fn)
		}
	}
	sort.Strings(spec.Hardware)
	sort.Strings(spec.Software)
	reports := checkers.CheckLanes(prog, spec)
	for _, r := range reports {
		fmt.Printf("%s: [lanes] %s\n", r.Pos, r.Msg)
	}
	fmt.Printf("linked %d functions, %d handlers, %d report(s)\n",
		len(prog.Funcs), len(spec.Hardware)+len(spec.Software), len(reports))
	if len(reports) > 0 {
		return 1
	}
	return 0
}

// parseTriageMode maps the -triage flag value to a lint mode; the
// empty string keeps triage off.
func parseTriageMode(v string) (lint.TriageMode, bool) {
	switch v {
	case "":
		return "", true
	case "slice":
		return lint.ModeSlice, true
	case "sym":
		return lint.ModeSym, true
	}
	return "", false
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcheck: "+format+"\n", args...)
	os.Exit(1)
}
