// mcheck is the xg++ analogue: it applies metal checkers (and the
// built-in FLASH suite) to protocol-C sources.
//
// Usage:
//
//	mcheck [-I dir]... [-checker file.metal]... [-flash] file.c...
//	mcheck -emit summaries.json file.c...     (local pass, paper §3.2)
//	mcheck -link summaries.json...            (global lane pass, §7)
//
// With -flash the built-in eight-checker FLASH suite runs using the
// naming-convention protocol spec (h_* hardware handlers, sw_*
// software handlers). Each -checker flag compiles and runs one metal
// program. Diagnostics print one per line as file:line:col: message.
//
// With -lint every checker state machine is linted (package lint)
// before anything runs; lint errors — dead rules, unreachable states,
// patterns outside the protocol vocabulary — abort the run, so a
// broken checker cannot silently report nothing (the paper's §11
// failure mode).
//
// -emit/-link reproduce the paper's file-based inter-procedural
// workflow: the local pass annotates each send with its lane and
// writes per-function flow graphs; the link pass merges any number of
// summary files into a whole-protocol call graph and runs the lane
// quota traversal (with default allowance 1/1/1/1 per handler).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"flashmc/internal/cc/cpp"
	"flashmc/internal/checkers"
	"flashmc/internal/core"
	"flashmc/internal/engine"
	"flashmc/internal/flash"
	"flashmc/internal/global"
	"flashmc/internal/lint"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var includes, checkerFiles stringList
	flag.Var(&includes, "I", "include search directory (repeatable)")
	flag.Var(&checkerFiles, "checker", "metal checker source file (repeatable)")
	flashSuite := flag.Bool("flash", false, "run the built-in FLASH checker suite")
	lintSMs := flag.Bool("lint", false, "lint checker state machines before running; exit on lint errors")
	verbose := flag.Bool("v", false, "print per-checker summaries")
	emit := flag.String("emit", "", "local pass: write annotated flow-graph summaries to this file")
	link := flag.Bool("link", false, "global pass: arguments are summary files; run the lane checker")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "mcheck: no input files")
		flag.Usage()
		os.Exit(2)
	}

	if *link {
		os.Exit(linkPass(files))
	}

	prog, err := core.Load("mcheck", cpp.Layered(cpp.OSSource{}, flash.HeaderSource()), files, includes...)
	if err != nil {
		fail("load: %v", err)
	}
	for _, e := range prog.ParseErrors {
		fmt.Fprintf(os.Stderr, "mcheck: %v\n", e)
	}
	if len(prog.ParseErrors) > 0 {
		os.Exit(1)
	}

	if *emit != "" {
		out, err := os.Create(*emit)
		if err != nil {
			fail("%v", err)
		}
		defer out.Close()
		if err := global.Write(out, checkers.Summarize(prog)); err != nil {
			fail("emit: %v", err)
		}
		fmt.Printf("emitted %d function summaries to %s\n", len(prog.Fns), *emit)
		return
	}

	// A runnable checker with the lint metadata gathered while
	// assembling it. Lint runs over every job before any job runs, so
	// a broken checker (dead rules, unreachable states, typo'd
	// patterns) fails loudly instead of silently reporting nothing.
	type job struct {
		name  string
		sm    *engine.SM
		decls map[string]string
		run   func() []engine.Report
	}
	var jobs []job

	spec := conventionSpec(prog)
	for _, cf := range checkerFiles {
		src, err := os.ReadFile(cf)
		if err != nil {
			fail("%v", err)
		}
		mp, err := prog.CompileChecker(string(src))
		if err != nil {
			fail("%s: %v", cf, err)
		}
		jobs = append(jobs, job{name: mp.Name, sm: mp.SM, decls: mp.Decls,
			run: func() []engine.Report { return prog.RunSM(mp.SM) }})
	}
	if *flashSuite {
		for _, chk := range checkers.All() {
			j := job{name: chk.Name(),
				run: func() []engine.Report { return chk.Check(prog, spec) }}
			if prov, ok := chk.(checkers.SMProvider); ok {
				j.sm, j.decls = prov.BuildSM(spec)
			}
			jobs = append(jobs, j)
		}
	}

	if *lintSMs {
		vocab := lint.FlashVocab()
		for _, fn := range prog.Fns {
			vocab.Add(fn.Name)
		}
		lintErrors := 0
		for _, j := range jobs {
			if j.sm == nil {
				continue // global pass, no SM to lint
			}
			diags := lint.CheckSM(lint.Target{SM: j.sm, Decls: j.decls, Vocab: vocab})
			for _, d := range diags {
				if d.Severity >= lint.Warn || *verbose {
					fmt.Fprintf(os.Stderr, "mcheck: lint: %s\n", d)
				}
			}
			lintErrors += len(lint.Errors(diags))
		}
		if lintErrors > 0 {
			fail("lint: %d error(s); not running checkers", lintErrors)
		}
	}

	var reports []engine.Report
	for _, j := range jobs {
		rs := j.run()
		if *verbose {
			fmt.Printf("checker %s: %d reports\n", j.name, len(rs))
		}
		reports = append(reports, rs...)
	}

	sort.Slice(reports, func(i, j int) bool {
		a, b := reports[i], reports[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		return a.Pos.Line < b.Pos.Line
	})
	for _, r := range reports {
		fmt.Printf("%s: [%s] %s\n", r.Pos, r.SM, r.Msg)
	}
	if len(reports) > 0 {
		os.Exit(1)
	}
}

// conventionSpec derives a protocol spec from naming conventions, for
// checking code without an explicit specification.
func conventionSpec(prog *core.Program) *flash.Spec {
	spec := &flash.Spec{
		Protocol:        "cli",
		Allowance:       map[string]flash.LaneVector{},
		NoStack:         map[string]bool{},
		BufferFreeFns:   map[string]bool{},
		BufferUseFns:    map[string]bool{},
		CondFreeFns:     map[string]bool{},
		DirWritebackFns: map[string]bool{},
	}
	for _, fn := range prog.Fns {
		switch flash.ClassifyName(fn.Name) {
		case flash.HardwareHandler:
			spec.Hardware = append(spec.Hardware, fn.Name)
		case flash.SoftwareHandler:
			spec.Software = append(spec.Software, fn.Name)
		}
	}
	return spec
}

// linkPass merges summary files and runs the global lane traversal.
func linkPass(files []string) int {
	var sums []*global.Summary
	for _, f := range files {
		r, err := os.Open(f)
		if err != nil {
			fail("%v", err)
		}
		s, err := global.Read(r)
		r.Close()
		if err != nil {
			fail("%s: %v", f, err)
		}
		sums = append(sums, s...)
	}
	prog, errs := global.Link(sums)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "mcheck: link: %v\n", e)
	}
	spec := &flash.Spec{Protocol: "cli", Allowance: map[string]flash.LaneVector{}}
	for fn := range prog.Funcs {
		switch flash.ClassifyName(fn) {
		case flash.HardwareHandler:
			spec.Hardware = append(spec.Hardware, fn)
		case flash.SoftwareHandler:
			spec.Software = append(spec.Software, fn)
		}
	}
	sort.Strings(spec.Hardware)
	sort.Strings(spec.Software)
	reports := checkers.CheckLanes(prog, spec)
	for _, r := range reports {
		fmt.Printf("%s: [lanes] %s\n", r.Pos, r.Msg)
	}
	fmt.Printf("linked %d functions, %d handlers, %d report(s)\n",
		len(prog.Funcs), len(spec.Hardware)+len(spec.Software), len(reports))
	if len(reports) > 0 {
		return 1
	}
	return 0
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcheck: "+format+"\n", args...)
	os.Exit(1)
}
