package main

// Ledger subcommands and provenance explanation for mcheck:
//
//	mcheck -cache DIR -runs        list the depot's run ledger
//	mcheck -cache DIR -diff A,B    compare two ledger entries
//	mcheck ... -explain            per-report provenance after a run
//
// -runs prints one greppable line per run, oldest first. -diff prints
// report changes to stdout (empty stdout ⇒ byte-identical streams)
// and perf deltas to stderr, so scripts can gate on `test -s`.

import (
	"fmt"
	"os"
	"strings"

	"flashmc/internal/depot"
	"flashmc/internal/engine"
	"flashmc/internal/sched"
)

// runsCmd lists the ledger, one line per run in append order.
func runsCmd(store *depot.Depot) int {
	ids := sched.ListRuns(store)
	for _, id := range ids {
		e, ok := sched.GetRun(store, id)
		if !ok {
			fmt.Printf("%s (entry evicted)\n", id)
			continue
		}
		fmt.Printf("%s reports=%d tasks=%d %s elapsed_ms=%.1f\n",
			e.ID, len(e.Reports), e.Tasks, e.DecisionLine(), float64(e.ElapsedUS)/1000)
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "mcheck: ledger is empty (runs record only into a persistent -cache)")
	}
	return 0
}

// diffCmd compares two ledger entries named "A,B". Report changes go
// to stdout with their witness traces; perf deltas go to stderr.
func diffCmd(store *depot.Depot, spec string) int {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fmt.Fprintln(os.Stderr, "mcheck: -diff wants two run ids: -diff OLD,NEW")
		return 2
	}
	a, okA := sched.GetRun(store, parts[0])
	b, okB := sched.GetRun(store, parts[1])
	if !okA {
		fmt.Fprintf(os.Stderr, "mcheck: -diff: unknown run %s\n", parts[0])
		return 2
	}
	if !okB {
		fmt.Fprintf(os.Stderr, "mcheck: -diff: unknown run %s\n", parts[1])
		return 2
	}
	diff := sched.DiffRuns(a, b)
	printSide := func(sign string, reps []engine.Report) {
		for _, r := range reps {
			fmt.Printf("%s %s: [%s] %s\n", sign, r.Pos, r.SM, r.Msg)
			for i, s := range r.Trace {
				fmt.Printf("    #%d %s\n", i+1, s)
			}
		}
	}
	printSide("-", diff.Disappeared)
	printSide("+", diff.Appeared)
	if !diff.SameRequest {
		fmt.Fprintf(os.Stderr, "diff %s..%s: different requests (program or checkers changed)\n", a.ID, b.ID)
	}
	if diff.Identical {
		fmt.Fprintf(os.Stderr, "diff %s..%s: reports byte-identical\n", a.ID, b.ID)
	} else {
		fmt.Fprintf(os.Stderr, "diff %s..%s: %d appeared, %d disappeared\n",
			a.ID, b.ID, len(diff.Appeared), len(diff.Disappeared))
	}
	fmt.Fprintf(os.Stderr, "perf: elapsed %+.1fms, task time %+.1fms, hits %+d, misses %+d\n",
		float64(diff.ElapsedDeltaUS)/1000, float64(diff.TaskDeltaUS)/1000,
		diff.HitDelta, diff.MissDelta)
	return 0
}

// explainReport prints one report's lineage: the artifact it came
// from, this run's cache decision for that artifact, and — when the
// provenance sidecar exists — who produced it, at which checker
// version, from which inputs, and at what cost.
func explainReport(store *depot.Depot, res *sched.Result, ri int) {
	r := res.Reports[ri]
	if ri >= len(res.RefIdx) || res.RefIdx[ri] < 0 {
		fmt.Fprintf(os.Stderr, "explain: %s [%s]: synthesized outside any artifact (link error)\n", r.Pos, r.SM)
		return
	}
	ref := res.Artifacts[res.RefIdx[ri]]
	line := fmt.Sprintf("explain: %s [%s] task=%s decision=%s artifact=%.12s checker=%s version=%s source=%.12s",
		r.Pos, r.SM, ref.Task, ref.Decision, ref.Key.ID(), ref.Key.Checker, ref.Key.Version, ref.Key.Source)
	if p, ok := store.GetProv(ref.Key); ok {
		line += fmt.Sprintf(" producer=%s wall=%.1fms", p.Producer, float64(p.WallUS)/1000)
		if p.TraceID != "" {
			line += " trace=" + p.TraceID
		}
		if len(p.Deps) > 0 {
			line += fmt.Sprintf(" deps=%d", len(p.Deps))
		}
	} else {
		line += " producer=unknown (no provenance sidecar)"
	}
	fmt.Fprintln(os.Stderr, line)
}

// explainArtifacts prints artifact-level lineage for every artifact
// the run touched (used when per-report order is reshuffled by
// triage).
func explainArtifacts(store *depot.Depot, res *sched.Result) {
	for _, ref := range res.Artifacts {
		line := fmt.Sprintf("explain: task=%s decision=%s artifact=%.12s checker=%s version=%s source=%.12s",
			ref.Task, ref.Decision, ref.Key.ID(), ref.Key.Checker, ref.Key.Version, ref.Key.Source)
		if p, ok := store.GetProv(ref.Key); ok {
			line += fmt.Sprintf(" producer=%s wall=%.1fms", p.Producer, float64(p.WallUS)/1000)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}
